//! Command implementations. Each returns the text to print, so the whole
//! surface is unit-testable without capturing stdout.

use crate::args::{ArgError, ParsedArgs};
use dmra_baselines::{CloudOnly, Dcsp, GreedyProfit, NonCo, RandomAllocator};
use dmra_core::agents::{run_protocol, ProtocolOptions};
use dmra_core::{
    set_batch_mode_default, set_solve_mode_default, Allocator, BatchMode, Dmra, DmraConfig,
    SolveMode, Threads,
};
use dmra_obs::{obs_debug, obs_info, Level};
use dmra_proto::DropPolicy;
use dmra_sim::dynamic::{
    DynamicConfig, DynamicSimulator, HoldingDistribution, ProtoDelay, ProtoFaults,
};
use dmra_sim::erlang::TrunkModel;
use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
use dmra_sim::{Metrics, ScenarioConfig, SweepRunner};
use dmra_types::BsId;

/// The `dmra help` text.
#[must_use]
pub fn help_text() -> String {
    "dmra — DMRA (ICDCS 2019) multi-SP MEC resource allocation\n\
     \n\
     USAGE: dmra <command> [--key value]...\n\
     \n\
     COMMANDS\n\
     run       run one scenario\n\
     \t--ues N        number of UEs               (default 600)\n\
     \t--seed S       scenario seed               (default 42)\n\
     \t--iota X       cross-SP markup             (default 2.0)\n\
     \t--rho X        Eq. (17) weight             (default 100)\n\
     \t--placement P  regular | random            (default regular)\n\
     \t--algo A       dmra|dcsp|nonco|greedy|random|cloud|all (default all)\n\
     \t--threads N    worker threads (0 = auto; or set DMRA_THREADS)\n\
     sweep     profit vs #UEs table (DMRA, DCSP, NonCo)\n\
     \t--seed S --iota X --placement P --reps R   (defaults 42, 2.0, regular, 3)\n\
     \t--format F     markdown | csv              (default markdown)\n\
     \t--threads N    worker threads (0 = auto; results are identical)\n\
     protocol  decentralized execution statistics\n\
     \t--ues N --seed S --drop PCT                (defaults 400, 42, 0)\n\
     \t--delay D      immediate | fixed:N | random:MAX (default immediate)\n\
     \t--crash B@R    comma-separated BS fail-stops, BS id @ protocol round\n\
     dynamic   online arrivals/departures\n\
     \t--rate X       arrivals per epoch          (default 40)\n\
     \t--holding H    mean holding epochs, or a distribution\n\
     \t               geometric | det | exp, optionally with a mean\n\
     \t               as NAME:X — e.g. 5, exp, det:3  (default geometric:5)\n\
     \t--epochs N     horizon                     (default 50)\n\
     \t--seed S                                   (default 42)\n\
     \t--engine E     event | incremental | proto | scratch\n\
     \t               (default incremental; identical results — proto\n\
     \t               computes each epoch by message-passing agents)\n\
     \t--drop PCT     proto engine: per-message loss percentage (default 0)\n\
     \t--delay D      proto engine: immediate | fixed:N | random:MAX\n\
     \t--crash B@E    proto engine: comma-separated BS fail-stops,\n\
     \t               BS id @ simulation epoch\n\
     \t--shards N     region-sharded row builds on a near-square N-cell grid\n\
     \t               (incremental engine only; identical results)\n\
     \t--shard-grid RxC  explicit shard grid, e.g. 3x3 (alternative to --shards)\n\
     mobility  moving UEs, handover statistics\n\
     \t--ues N --speed MPS --epochs N --seed S    (defaults 300, 5, 30, 42)\n\
     \t--policy P     full | sticky               (default full)\n\
     \t--stationary F fraction of UEs pinned in place (default 0)\n\
     \t--engine E     incremental | scratch       (default incremental; identical results)\n\
     \t--shards N     region-sharded row builds (incremental engine only)\n\
     \t--shard-grid RxC  explicit shard grid, e.g. 3x3 (alternative to --shards)\n\
     plan      Erlang-B blocking prediction & dimensioning\n\
     \t--rate X --holding X --target PCT          (defaults 100, 5, 2)\n\
     help      this text\n\
     \n\
     GLOBAL OPTIONS (any command)\n\
     \t--quiet          only warnings and errors on stderr\n\
     \t--verbose, -v    debug logging on stderr\n\
     \t--log-level L    error | warn | info | debug (overrides the flags)\n\
     \t--trace-out F    enable telemetry, write trace + metrics JSON to F,\n\
     \t                 and append the counter/timer report to the output\n\
     \t                 (run, sweep, dynamic and mobility only)\n\
     \t--record F       enable telemetry and write the flight record — one\n\
     \t                 JSONL line per epoch/round/cell — to F\n\
     \t                 (sweep, protocol, dynamic and mobility)\n\
     \t--sample-every N keep every Nth flight record (with --record;\n\
     \t                 default 1 = every record)\n\
     \t--metrics-addr A enable telemetry and serve live Prometheus text at\n\
     \t                 http://A/metrics for the duration of the command\n\
     \t                 (e.g. 127.0.0.1:0 picks a free port; the bound\n\
     \t                 address is logged on stderr)\n\
     \t--candidate-batch M  exact | approx: link-batch kernel mode\n\
     \t                 (default exact = bit-identical to the scalar\n\
     \t                 evaluator; approx trades ~1e-10 relative error\n\
     \t                 for polynomial transcendentals)\n\
     \t--solve M        monolithic | components | delta: DMRA solve\n\
     \t                 execution (default monolithic; components\n\
     \t                 decomposes each instance into candidate-graph\n\
     \t                 components and solves them in parallel; delta\n\
     \t                 additionally replays cached component matchings\n\
     \t                 across epochs under low churn — identical\n\
     \t                 results either way)\n"
        .to_owned()
}

/// Dispatches a parsed command line to its implementation, handling the
/// global observability surface: `--quiet` / `-v` / `--log-level` set the
/// logging facade's level, and `--trace-out PATH` enables telemetry for
/// the run, writes the trace JSON, and appends the human report table to
/// the command's output.
///
/// # Errors
///
/// Returns [`ArgError`] for unknown commands/options or failed runs.
pub fn dispatch(parsed: &ParsedArgs) -> Result<String, ArgError> {
    configure_logging(parsed)?;
    configure_batch_mode(parsed)?;
    configure_solve_mode(parsed)?;
    let trace_out = parsed.get("trace-out").map(std::path::PathBuf::from);
    let record_out = parsed.get("record").map(std::path::PathBuf::from);
    if parsed.get("sample-every").is_some() && record_out.is_none() {
        return Err(ArgError("--sample-every requires --record".into()));
    }
    let sample_every = parsed.get_or("sample-every", 1u64)?;
    if sample_every == 0 {
        return Err(ArgError("--sample-every must be at least 1".into()));
    }
    let metrics_addr = parsed.get("metrics-addr");
    if trace_out.is_some() || record_out.is_some() || metrics_addr.is_some() {
        // Start the observed run from a clean slate so the emitted
        // artefacts describe exactly this command.
        dmra_obs::global().reset();
        dmra_obs::global_trace().clear();
        dmra_obs::set_enabled(true);
    }
    let recorder = match &record_out {
        Some(path) => {
            let recorder =
                std::sync::Arc::new(dmra_obs::Recorder::create(path, sample_every).map_err(
                    |e| ArgError(format!("cannot open flight record {}: {e}", path.display())),
                )?);
            // The process-wide slot reaches every engine — the dynamic
            // and mobility simulators, the sweep runner and the proto
            // round engine all fall back to it.
            dmra_obs::set_epoch_observer(Some(
                std::sync::Arc::clone(&recorder) as std::sync::Arc<dyn dmra_obs::EpochObserver>
            ));
            Some(recorder)
        }
        None => None,
    };
    let server = match metrics_addr {
        Some(addr) => {
            let server = dmra_obs::MetricsServer::bind(addr)
                .map_err(|e| ArgError(format!("cannot bind metrics server on {addr}: {e}")))?;
            obs_info!("serving metrics on http://{}/metrics", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let result = dispatch_inner(parsed);
    let mut record_note = String::new();
    if let (Some(recorder), Some(path)) = (recorder, &record_out) {
        dmra_obs::set_epoch_observer(None);
        let clean = recorder.finish();
        record_note = format!(
            "flight record: {} lines to {}\n",
            recorder.lines_written(),
            path.display()
        );
        if !clean {
            return Err(ArgError(format!(
                "flight record write to {} failed (disk full?)",
                path.display()
            )));
        }
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(path) = trace_out {
        dmra_obs::set_enabled(false);
        let report = write_trace(&path, &parsed.command)?;
        return result.map(|text| {
            format!(
                "{text}{record_note}\n--- telemetry report ---\n{report}trace written to {}\n",
                path.display()
            )
        });
    }
    if record_out.is_some() || metrics_addr.is_some() {
        dmra_obs::set_enabled(false);
    }
    result.map(|text| format!("{text}{record_note}"))
}

/// Applies the verbosity surface: default Info, `--verbose`/`-v` raises
/// to Debug, `--quiet` lowers to Warn, and an explicit `--log-level`
/// overrides both.
fn configure_logging(parsed: &ParsedArgs) -> Result<(), ArgError> {
    let mut level = Level::Info;
    if parsed.has_flag("verbose") {
        level = Level::Debug;
    }
    if parsed.has_flag("quiet") {
        level = Level::Warn;
    }
    if let Some(raw) = parsed.get("log-level") {
        level = raw.parse().map_err(|e| ArgError(format!("{e}")))?;
    }
    dmra_obs::set_level(level);
    Ok(())
}

/// Applies `--candidate-batch M` to the process-global default mode of
/// the batched link-evaluation kernel. `exact` (the default) is
/// bit-identical to the scalar evaluator; `approx` substitutes
/// polynomial transcendentals with about 1e-10 relative error.
fn configure_batch_mode(parsed: &ParsedArgs) -> Result<(), ArgError> {
    match parsed.get("candidate-batch") {
        None | Some("exact") => set_batch_mode_default(BatchMode::Exact),
        Some("approx") => set_batch_mode_default(BatchMode::Approx),
        Some(other) => {
            return Err(ArgError(format!(
                "--candidate-batch must be 'exact' or 'approx', got '{other}'"
            )))
        }
    }
    Ok(())
}

/// Applies `--solve M` to the process-global default [`SolveMode`], picked
/// up by every DMRA solve in the command — all engines and the sharded
/// runtime included. `components` and `delta` only change wall-clock
/// time: outcomes are bit-identical to `monolithic` (instances whose
/// physics forbid splitting quietly stay monolithic, and `delta` without
/// cross-epoch churn metadata degrades to `components`).
fn configure_solve_mode(parsed: &ParsedArgs) -> Result<(), ArgError> {
    match parsed.get("solve") {
        None | Some("monolithic") => set_solve_mode_default(SolveMode::Monolithic),
        Some("components") => set_solve_mode_default(SolveMode::Components),
        Some("delta") => set_solve_mode_default(SolveMode::Delta),
        Some(other) => {
            return Err(ArgError(format!(
                "--solve must be 'monolithic', 'components' or 'delta', got '{other}'"
            )))
        }
    }
    Ok(())
}

/// Serializes the global registry + trace log to `path` (schema
/// `dmra-obs/1`, documented in DESIGN.md §10) and returns the human
/// report table.
fn write_trace(path: &std::path::Path, command: &str) -> Result<String, ArgError> {
    let snapshot = dmra_obs::global().snapshot();
    let trace = dmra_obs::global_trace();
    let json = format!(
        "{{\n  \"schema\": \"dmra-obs/1\",\n  \"command\": \"{command}\",\n  \
         \"dropped_events\": {},\n  \"events\": {},\n  \"metrics\": {}\n}}\n",
        trace.dropped(),
        trace.to_json(),
        snapshot.to_json()
    );
    std::fs::write(path, json)
        .map_err(|e| ArgError(format!("cannot write trace to {}: {e}", path.display())))?;
    Ok(snapshot.render_table())
}

fn dispatch_inner(parsed: &ParsedArgs) -> Result<String, ArgError> {
    match parsed.command.as_str() {
        "run" => cmd_run(parsed),
        "sweep" => cmd_sweep(parsed),
        "protocol" => cmd_protocol(parsed),
        "dynamic" => cmd_dynamic(parsed),
        "mobility" => cmd_mobility(parsed),
        "plan" => cmd_plan(parsed),
        "help" => Ok(help_text()),
        other => Err(ArgError(format!(
            "unknown command '{other}'; try `dmra help`"
        ))),
    }
}

fn scenario_from(parsed: &ParsedArgs) -> Result<ScenarioConfig, ArgError> {
    let mut cfg = ScenarioConfig::paper_defaults()
        .with_ues(parsed.get_or("ues", 600usize)?)
        .with_seed(parsed.get_or("seed", 42u64)?)
        .with_iota(parsed.get_or("iota", 2.0f64)?);
    match parsed.get("placement").unwrap_or("regular") {
        "regular" => {}
        "random" => cfg = cfg.with_random_placement(),
        other => {
            return Err(ArgError(format!(
                "--placement must be 'regular' or 'random', got '{other}'"
            )))
        }
    }
    Ok(cfg)
}

/// Parses `--threads N`: absent or `0` means [`Threads::Auto`] (which in
/// turn honours the `DMRA_THREADS` environment variable).
fn threads_from(parsed: &ParsedArgs) -> Result<Threads, ArgError> {
    match parsed.get_or("threads", 0usize)? {
        0 => Ok(Threads::Auto),
        n => Ok(Threads::Fixed(n)),
    }
}

fn algorithms(selector: &str, seed: u64, rho: f64) -> Result<Vec<Box<dyn Allocator>>, ArgError> {
    let dmra = || Box::new(Dmra::new(DmraConfig::paper_defaults().with_rho(rho)));
    Ok(match selector {
        "dmra" => vec![dmra()],
        "dcsp" => vec![Box::new(Dcsp::default())],
        "nonco" => vec![Box::new(NonCo::default())],
        "greedy" => vec![Box::new(GreedyProfit::default())],
        "random" => vec![Box::new(RandomAllocator::new(seed))],
        "cloud" => vec![Box::new(CloudOnly::default())],
        "all" => vec![
            dmra(),
            Box::new(Dcsp::default()),
            Box::new(NonCo::default()),
            Box::new(GreedyProfit::default()),
            Box::new(RandomAllocator::new(seed)),
            Box::new(CloudOnly::default()),
        ],
        other => {
            return Err(ArgError(format!(
                "--algo must be dmra|dcsp|nonco|greedy|random|cloud|all, got '{other}'"
            )))
        }
    })
}

fn cmd_run(parsed: &ParsedArgs) -> Result<String, ArgError> {
    parsed.expect_keys(&[
        "ues",
        "seed",
        "iota",
        "rho",
        "placement",
        "algo",
        "threads",
        "log-level",
        "trace-out",
        "record",
        "sample-every",
        "metrics-addr",
        "candidate-batch",
        "solve",
    ])?;
    let seed = parsed.get_or("seed", 42u64)?;
    let rho = parsed.get_or("rho", 100.0f64)?;
    let instance = scenario_from(parsed)?
        .build_with_threads(threads_from(parsed)?)
        .map_err(|e| ArgError(e.to_string()))?;
    let mut out = format!(
        "{} SPs, {} BSs, {} UEs, {} services\n\n{:<14} {:>12} {:>8} {:>8} {:>9} {:>9}\n",
        instance.n_sps(),
        instance.n_bss(),
        instance.n_ues(),
        instance.catalog().len(),
        "algorithm",
        "profit",
        "served",
        "cloud",
        "same-SP%",
        "RRB-util%"
    );
    for algo in algorithms(parsed.get("algo").unwrap_or("all"), seed, rho)? {
        obs_debug!("running allocator {}", algo.name());
        let allocation = algo.allocate(&instance);
        allocation
            .validate(&instance)
            .map_err(|e| ArgError(format!("{}: {e}", algo.name())))?;
        let m = Metrics::compute(&instance, &allocation);
        out.push_str(&format!(
            "{:<14} {:>12.1} {:>8} {:>8} {:>9.1} {:>9.1}\n",
            algo.name(),
            m.total_profit.get(),
            m.edge_served,
            m.cloud_forwarded,
            m.same_sp_fraction * 100.0,
            m.rrb_utilization * 100.0
        ));
    }
    Ok(out)
}

fn cmd_sweep(parsed: &ParsedArgs) -> Result<String, ArgError> {
    parsed.expect_keys(&[
        "seed",
        "iota",
        "placement",
        "reps",
        "format",
        "threads",
        "log-level",
        "trace-out",
        "record",
        "sample-every",
        "metrics-addr",
        "candidate-batch",
        "solve",
    ])?;
    let base = scenario_from(parsed)?;
    let reps = parsed.get_or("reps", 3u32)?;
    if reps == 0 {
        return Err(ArgError("--reps must be at least 1".into()));
    }
    let runner =
        SweepRunner::new(reps, parsed.get_or("seed", 42u64)?).with_threads(threads_from(parsed)?);
    let points: Vec<(f64, ScenarioConfig)> = dmra_sim::experiments::UE_COUNTS
        .iter()
        .map(|&n| (n as f64, base.clone().with_ues(n)))
        .collect();
    let dmra = Dmra::default();
    let dcsp = Dcsp::default();
    let nonco = NonCo::default();
    let algos: Vec<&dyn Allocator> = vec![&dmra, &dcsp, &nonco];
    let table = runner
        .run_profit("Total SP profit vs number of UEs", "#UEs", &points, &algos)
        .map_err(|e| ArgError(e.to_string()))?;
    match parsed.get("format").unwrap_or("markdown") {
        "markdown" => Ok(table.to_markdown()),
        "csv" => Ok(table.to_csv()),
        other => Err(ArgError(format!(
            "--format must be 'markdown' or 'csv', got '{other}'"
        ))),
    }
}

/// Parses a `--drop PCT` percentage into a probability in `[0, 1)`.
fn drop_probability(parsed: &ParsedArgs) -> Result<f64, ArgError> {
    let drop_pct = parsed.get_or("drop", 0.0f64)?;
    if !(0.0..100.0).contains(&drop_pct) {
        return Err(ArgError("--drop must be a percentage in [0, 100)".into()));
    }
    Ok(drop_pct / 100.0)
}

/// Parses the `--delay` spec (`immediate | fixed:N | random:MAX`).
fn delay_spec(parsed: &ParsedArgs) -> Result<ProtoDelay, ArgError> {
    parsed
        .get("delay")
        .unwrap_or("immediate")
        .parse::<ProtoDelay>()
        .map_err(|e| ArgError(format!("--delay: {e}")))
}

/// Parses `--crash BS@N[,BS@N...]` against the scenario's BS count.
/// `N` is a protocol round under `protocol` and a simulation epoch under
/// `dynamic --engine proto`.
fn crash_spec(parsed: &ParsedArgs, n_bss: usize) -> Result<Vec<(BsId, usize)>, ArgError> {
    let Some(raw) = parsed.get("crash") else {
        return Ok(Vec::new());
    };
    let mut crashes = Vec::new();
    for part in raw.split(',') {
        let (bs, at) = part
            .split_once('@')
            .and_then(|(b, a)| Some((b.parse::<u32>().ok()?, a.parse::<usize>().ok()?)))
            .ok_or_else(|| {
                ArgError(format!(
                    "--crash entries must look like 'BS@N', got '{part}'"
                ))
            })?;
        if bs as usize >= n_bss {
            return Err(ArgError(format!(
                "--crash names unknown BS {bs} (scenario has {n_bss} BSs)"
            )));
        }
        crashes.push((BsId::new(bs), at));
    }
    Ok(crashes)
}

fn cmd_protocol(parsed: &ParsedArgs) -> Result<String, ArgError> {
    parsed.expect_keys(&[
        "ues",
        "seed",
        "drop",
        "delay",
        "crash",
        "iota",
        "placement",
        "rho",
        "log-level",
        "record",
        "sample-every",
        "metrics-addr",
    ])?;
    let drop_prob = drop_probability(parsed)?;
    let seed = parsed.get_or("seed", 42u64)?;
    let rho = parsed.get_or("rho", 100.0f64)?;
    let mut cfg = scenario_from(parsed)?;
    cfg.n_ues = parsed.get_or("ues", 400usize)?;
    let instance = cfg.build().map_err(|e| ArgError(e.to_string()))?;
    let policy = if drop_prob > 0.0 {
        DropPolicy::new(drop_prob, seed)
    } else {
        DropPolicy::reliable()
    };
    let delay = delay_spec(parsed)?;
    let crashed_bss = crash_spec(parsed, instance.n_bss())?;
    let defaults = ProtocolOptions::default();
    let out = run_protocol(
        &instance,
        &DmraConfig::paper_defaults().with_rho(rho),
        ProtocolOptions {
            drop_policy: policy,
            delay: delay.to_model(seed),
            crashed_bss,
            // Widen the grace by the delay bound so a maximally-delayed
            // retry still counts as activity (same rule as the dynamic
            // proto engine).
            quiescence_grace: defaults.quiescence_grace + delay.extra_bound() as usize,
            ..defaults
        },
    )
    .map_err(|e| ArgError(e.to_string()))?;
    let mut text = format!(
        "rounds:    {}\nmessages:  {} ({} dropped, {} absorbed by crash, {} bytes)\n",
        out.stats.rounds,
        out.stats.messages_sent,
        out.stats.messages_dropped,
        out.stats.absorbed_by_crash,
        out.stats.bytes_sent
    );
    for (kind, count) in &out.stats.by_kind {
        text.push_str(&format!("  {kind:<18} {count}\n"));
    }
    text.push_str(&format!(
        "served:    {} of {}\nprofit:    {:.1}\nconflicts: {}\n",
        out.allocation.edge_served(),
        instance.n_ues(),
        instance.total_profit(&out.allocation).get(),
        out.conflicting_accepts
    ));
    Ok(text)
}

/// The `--shards N` / `--shard-grid RxC` surface shared by `dynamic` and
/// `mobility`.
enum ShardArg {
    /// `--shards N`: a near-square grid with exactly N cells.
    Count(usize),
    /// `--shard-grid RxC`: an explicit rows × cols grid.
    Grid(usize, usize),
}

/// Parses the sharding flags; the two are mutually exclusive and only
/// the incremental engine supports sharded row builds.
fn shard_spec(parsed: &ParsedArgs) -> Result<Option<ShardArg>, ArgError> {
    let arg = match (parsed.get("shards"), parsed.get("shard-grid")) {
        (Some(_), Some(_)) => {
            return Err(ArgError(
                "--shards and --shard-grid are mutually exclusive".into(),
            ))
        }
        (Some(raw), None) => {
            let n = raw
                .parse::<usize>()
                .map_err(|_| ArgError(format!("cannot parse shard count '{raw}'")))?;
            Some(ShardArg::Count(n))
        }
        (None, Some(raw)) => {
            let (rows, cols) = raw
                .split_once('x')
                .and_then(|(r, c)| Some((r.parse::<usize>().ok()?, c.parse::<usize>().ok()?)))
                .ok_or_else(|| {
                    ArgError(format!("--shard-grid must look like '3x3', got '{raw}'"))
                })?;
            Some(ShardArg::Grid(rows, cols))
        }
        (None, None) => None,
    };
    if arg.is_some() {
        let engine = parsed.get("engine").unwrap_or("incremental");
        if engine != "incremental" {
            return Err(ArgError(format!(
                "--shards/--shard-grid require the incremental engine, got --engine {engine}"
            )));
        }
    }
    Ok(arg)
}

/// Parses the fault-injection flags for `dynamic`; they only make sense
/// for the protocol-backed engine, so any of them with another engine is
/// an error (mirroring the `--shards`/incremental gate).
fn proto_fault_spec(parsed: &ParsedArgs, n_bss: usize) -> Result<ProtoFaults, ArgError> {
    let engine = parsed.get("engine").unwrap_or("incremental");
    let faulty = ["drop", "delay", "crash"]
        .iter()
        .any(|k| parsed.get(k).is_some());
    if faulty && engine != "proto" {
        return Err(ArgError(format!(
            "--drop/--delay/--crash require the proto engine, got --engine {engine}"
        )));
    }
    Ok(ProtoFaults {
        drop_prob: drop_probability(parsed)?,
        delay: delay_spec(parsed)?,
        crashes: crash_spec(parsed, n_bss)?,
        max_rounds: 0,
    })
}

fn cmd_dynamic(parsed: &ParsedArgs) -> Result<String, ArgError> {
    parsed.expect_keys(&[
        "rate",
        "holding",
        "epochs",
        "seed",
        "iota",
        "placement",
        "engine",
        "drop",
        "delay",
        "crash",
        "shards",
        "shard-grid",
        "log-level",
        "trace-out",
        "record",
        "sample-every",
        "metrics-addr",
        "candidate-batch",
        "solve",
    ])?;
    let (holding, mean_holding) = parse_holding(parsed.get("holding").unwrap_or("5"))?;
    let config = DynamicConfig {
        scenario: scenario_from(parsed)?,
        arrival_rate: parsed.get_or("rate", 40.0f64)?,
        mean_holding,
        holding,
        epochs: parsed.get_or("epochs", 50usize)?,
        seed: parsed.get_or("seed", 42u64)?,
    };
    obs_debug!(
        "dynamic: rate {} holding {}:{} epochs {}",
        config.arrival_rate,
        config.holding,
        config.mean_holding,
        config.epochs
    );
    let n_bss = config.scenario.n_bss() as usize;
    let simulator = DynamicSimulator::new(config);
    let sharding = shard_spec(parsed)?;
    let faults = proto_fault_spec(parsed, n_bss)?;
    // All engines are bit-identical (proto under its default fault-free
    // spec); `event` skips idle epochs, `scratch` is the slow executable
    // specification, exposed for spot-checks and benchmarking, `proto`
    // computes each epoch's matching by message-passing agents (the only
    // engine taking --drop/--delay/--crash), and the sharded variants fan
    // the incremental engine's row builds out to region workers.
    let out = match (parsed.get("engine").unwrap_or("incremental"), sharding) {
        (_, Some(ShardArg::Count(n))) => simulator.run_sharded_n(n),
        (_, Some(ShardArg::Grid(rows, cols))) => simulator.run_sharded(rows, cols),
        ("event", None) => simulator.run_event(),
        ("incremental", None) => simulator.run(),
        ("proto", None) => simulator.run_proto(&faults),
        ("scratch", None) => simulator.run_scratch(),
        (other, None) => {
            return Err(ArgError(format!(
                "--engine must be 'event', 'incremental', 'proto' or 'scratch', got '{other}'"
            )))
        }
    }
    .map_err(|e| ArgError(e.to_string()))?;
    Ok(format!(
        "arrivals:          {}\nadmitted:          {} ({:.1}%)\ncloud forwarded:   {}\n\
         completed:         {}\ntotal profit:      {:.1}\nsteady-state RRB:  {:.1}%\n",
        out.arrivals,
        out.admitted,
        out.admission_ratio() * 100.0,
        out.cloud_forwarded,
        out.completed,
        out.total_profit.get(),
        out.steady_state_occupancy() * 100.0
    ))
}

/// Parses the `--holding` argument. Three accepted shapes:
///
/// * a bare number (`--holding 5`) — geometric holding with that mean,
///   the pre-distribution behaviour;
/// * a distribution name (`--holding exp`) — that distribution with the
///   default mean of 5 epochs;
/// * `name:mean` (`--holding det:3`) — both at once.
fn parse_holding(raw: &str) -> Result<(HoldingDistribution, f64), ArgError> {
    if let Ok(mean) = raw.parse::<f64>() {
        return Ok((HoldingDistribution::Geometric, mean));
    }
    let (name, mean) = match raw.split_once(':') {
        Some((name, mean_raw)) => {
            let mean = mean_raw.parse::<f64>().map_err(|_| {
                ArgError(format!(
                    "cannot parse holding mean '{mean_raw}' in --holding {raw}"
                ))
            })?;
            (name, mean)
        }
        None => (raw, 5.0),
    };
    let dist = name
        .parse::<HoldingDistribution>()
        .map_err(|e| ArgError(e.to_string()))?;
    Ok((dist, mean))
}

fn cmd_mobility(parsed: &ParsedArgs) -> Result<String, ArgError> {
    parsed.expect_keys(&[
        "ues",
        "speed",
        "epochs",
        "seed",
        "iota",
        "placement",
        "policy",
        "stationary",
        "engine",
        "shards",
        "shard-grid",
        "log-level",
        "trace-out",
        "record",
        "sample-every",
        "metrics-addr",
        "candidate-batch",
        "solve",
    ])?;
    let speed = parsed.get_or("speed", 5.0f64)?;
    if speed < 0.0 {
        return Err(ArgError("--speed must be non-negative".into()));
    }
    let mut scenario = scenario_from(parsed)?;
    scenario.n_ues = parsed.get_or("ues", 300usize)?;
    let policy = match parsed.get("policy").unwrap_or("full") {
        "full" => MobilityPolicy::FullReallocation,
        "sticky" => MobilityPolicy::Sticky,
        other => {
            return Err(ArgError(format!(
                "--policy must be 'full' or 'sticky', got '{other}'"
            )))
        }
    };
    let config = MobilityConfig {
        scenario,
        speed_mps: (speed, speed),
        epoch_seconds: 10.0,
        epochs: parsed.get_or("epochs", 30usize)?,
        seed: parsed.get_or("seed", 42u64)?,
        policy,
        stationary_fraction: parsed.get_or("stationary", 0.0f64)?,
    };
    let simulator = MobilitySimulator::new(config);
    let sharding = shard_spec(parsed)?;
    // All engines are bit-identical; `scratch` is the slow exhaustive
    // full-rebuild specification, exposed for spot-checks and benchmarks,
    // and the sharded variants fan the incremental engine's row builds
    // out to region workers.
    let out = match (parsed.get("engine").unwrap_or("incremental"), sharding) {
        (_, Some(ShardArg::Count(n))) => simulator.run_sharded_n(n),
        (_, Some(ShardArg::Grid(rows, cols))) => simulator.run_sharded(rows, cols),
        ("incremental", None) => simulator.run(),
        ("scratch", None) => simulator.run_scratch(),
        (other, None) => {
            return Err(ArgError(format!(
                "--engine must be 'incremental' or 'scratch', got '{other}'"
            )))
        }
    }
    .map_err(|e| ArgError(e.to_string()))?;
    let served_last = out.served_timeline.last().copied().unwrap_or(0);
    Ok(format!(
        "handovers:       {}
handover rate:   {:.4} per served-UE-epoch
         drops:           {}
recoveries:      {}
served (final):  {served_last}
",
        out.handovers,
        out.handover_rate(),
        out.drops,
        out.recoveries
    ))
}

fn cmd_plan(parsed: &ParsedArgs) -> Result<String, ArgError> {
    parsed.expect_keys(&[
        "rate",
        "holding",
        "target",
        "iota",
        "placement",
        "seed",
        "log-level",
    ])?;
    let rate = parsed.get_or("rate", 100.0f64)?;
    let holding = parsed.get_or("holding", 5.0f64)?;
    let target_pct = parsed.get_or("target", 2.0f64)?;
    if !(0.0 < target_pct && target_pct <= 100.0) {
        return Err(ArgError("--target must be a percentage in (0, 100]".into()));
    }
    let scenario = scenario_from(parsed)?;
    let model = TrunkModel::estimate(&scenario, 400, parsed.get_or("seed", 42u64)?)
        .map_err(|e| ArgError(e.to_string()))?;
    let offered = rate * holding;
    let blocking = model.predicted_blocking(rate, holding);
    let needed = dmra_sim::erlang::servers_for_blocking(offered, target_pct / 100.0);
    Ok(format!(
        "trunk model:        {} effective servers ({:.2} RRBs/task)
         offered load:       {offered:.1} erlang
         predicted blocking: {:.2}%
         servers needed for {target_pct}% blocking: {needed}
",
        model.servers,
        model.mean_rrbs_per_task,
        blocking * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, ArgError> {
        dispatch(&ParsedArgs::parse(args.iter().copied()).unwrap())
    }

    #[test]
    fn help_lists_every_command() {
        let text = help_text();
        for cmd in ["run", "sweep", "protocol", "dynamic"] {
            assert!(text.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn run_command_produces_metric_table() {
        let text = run(&["run", "--ues", "80", "--algo", "dmra"]).unwrap();
        assert!(text.contains("DMRA"));
        assert!(text.contains("profit"));
    }

    #[test]
    fn run_rejects_bad_algo_and_placement() {
        assert!(run(&["run", "--algo", "magic"]).is_err());
        assert!(run(&["run", "--placement", "orbital"]).is_err());
    }

    #[test]
    fn protocol_reports_messages() {
        let text = run(&["protocol", "--ues", "60", "--drop", "10"]).unwrap();
        assert!(text.contains("service-request"));
        assert!(text.contains("dropped"));
    }

    #[test]
    fn protocol_rejects_full_loss() {
        assert!(run(&["protocol", "--drop", "100"]).is_err());
    }

    #[test]
    fn protocol_accepts_delay_and_crash() {
        let args = ["protocol", "--ues", "60", "--seed", "7"];
        // An explicit immediate delay is the default spelled out.
        let plain = run(&args).unwrap();
        let immediate = run(&[&args[..], &["--delay", "immediate"]].concat()).unwrap();
        assert_eq!(plain, immediate);
        // Faulty runs still report, and a crashed BS absorbs messages.
        let crashed =
            run(&[&args[..], &["--delay", "fixed:1", "--crash", "0@2,1@3"]].concat()).unwrap();
        assert!(crashed.contains("absorbed by crash"), "{crashed}");
        assert!(crashed.contains("served:"), "{crashed}");
    }

    #[test]
    fn protocol_rejects_bad_delay_and_crash_specs() {
        let err = run(&["protocol", "--delay", "soonish"]).unwrap_err();
        assert!(err.to_string().contains("--delay"), "{err}");
        let err = run(&["protocol", "--delay", "fixed:lots"]).unwrap_err();
        assert!(err.to_string().contains("fixed:lots"), "{err}");
        let err = run(&["protocol", "--crash", "0x3"]).unwrap_err();
        assert!(err.to_string().contains("BS@N"), "{err}");
        let err = run(&["protocol", "--crash", "99@1"]).unwrap_err();
        assert!(err.to_string().contains("unknown BS 99"), "{err}");
    }

    #[test]
    fn dynamic_reports_admissions() {
        let text = run(&[
            "dynamic",
            "--rate",
            "10",
            "--epochs",
            "10",
            "--holding",
            "2",
        ])
        .unwrap();
        assert!(text.contains("admitted"));
        assert!(text.contains("steady-state"));
    }

    #[test]
    fn dynamic_engines_print_identical_reports() {
        let args = ["--rate", "15", "--epochs", "12", "--holding", "3"];
        let incremental =
            run(&[&["dynamic", "--engine", "incremental"], &args[..]].concat()).unwrap();
        let scratch = run(&[&["dynamic", "--engine", "scratch"], &args[..]].concat()).unwrap();
        let event = run(&[&["dynamic", "--engine", "event"], &args[..]].concat()).unwrap();
        let proto = run(&[&["dynamic", "--engine", "proto"], &args[..]].concat()).unwrap();
        assert_eq!(incremental, scratch);
        assert_eq!(incremental, event);
        assert_eq!(incremental, proto);
    }

    #[test]
    fn dynamic_proto_engine_takes_fault_flags() {
        let text = run(&[
            "dynamic",
            "--engine",
            "proto",
            "--rate",
            "10",
            "--epochs",
            "10",
            "--holding",
            "2",
            "--drop",
            "20",
            "--delay",
            "random:2",
            "--crash",
            "1@3",
        ])
        .unwrap();
        assert!(text.contains("admitted"), "{text}");
    }

    #[test]
    fn dynamic_fault_flags_require_the_proto_engine() {
        for flags in [
            &["--drop", "10"][..],
            &["--delay", "fixed:1"][..],
            &["--crash", "0@2"][..],
        ] {
            let err = run(&[&["dynamic"], flags].concat()).unwrap_err();
            assert!(err.to_string().contains("proto"), "{err}");
            let err = run(&[&["dynamic", "--engine", "event"], flags].concat()).unwrap_err();
            assert!(err.to_string().contains("proto"), "{err}");
        }
    }

    #[test]
    fn dynamic_proto_rejects_bad_fault_specs() {
        let base = ["dynamic", "--engine", "proto"];
        let err = run(&[&base[..], &["--drop", "100"]].concat()).unwrap_err();
        assert!(err.to_string().contains("[0, 100)"), "{err}");
        let err = run(&[&base[..], &["--delay", "eventually"]].concat()).unwrap_err();
        assert!(err.to_string().contains("--delay"), "{err}");
        let err = run(&[&base[..], &["--crash", "999@0"]].concat()).unwrap_err();
        assert!(err.to_string().contains("unknown BS 999"), "{err}");
    }

    #[test]
    fn dynamic_rejects_unknown_engine() {
        let err = run(&["dynamic", "--engine", "warp"]).unwrap_err();
        assert!(err.to_string().contains("--engine"));
    }

    #[test]
    fn dynamic_accepts_holding_distributions() {
        for holding in ["exp", "exponential:4", "det:3", "geometric:5", "geo"] {
            let text = run(&[
                "dynamic",
                "--rate",
                "8",
                "--epochs",
                "10",
                "--holding",
                holding,
                "--engine",
                "event",
            ])
            .unwrap();
            assert!(text.contains("admitted"), "--holding {holding} failed");
        }
        // A bare number is still geometric with that mean: same report.
        let args = ["--rate", "8", "--epochs", "10", "--engine", "event"];
        let numeric = run(&[&["dynamic", "--holding", "5"], &args[..]].concat()).unwrap();
        let named = run(&[&["dynamic", "--holding", "geometric:5"], &args[..]].concat()).unwrap();
        assert_eq!(numeric, named);
    }

    #[test]
    fn dynamic_rejects_bad_holding() {
        let err = run(&["dynamic", "--holding", "weibull"]).unwrap_err();
        assert!(err.to_string().contains("weibull"));
        let err = run(&["dynamic", "--holding", "exp:soon"]).unwrap_err();
        assert!(err.to_string().contains("soon"));
    }

    #[test]
    fn dynamic_rejects_invalid_config_values() {
        // Validation errors surface as CLI errors, not silent clamps.
        let err = run(&["dynamic", "--rate", "-3"]).unwrap_err();
        assert!(err.to_string().contains("arrival_rate"));
        let err = run(&["dynamic", "--holding", "0.5"]).unwrap_err();
        assert!(err.to_string().contains("mean_holding"));
        let err = run(&["dynamic", "--holding", "exp:0.2"]).unwrap_err();
        assert!(err.to_string().contains("mean_holding"));
    }

    #[test]
    fn mobility_reports_handovers() {
        let text = run(&["mobility", "--ues", "60", "--speed", "15", "--epochs", "6"]).unwrap();
        assert!(text.contains("handover rate"));
    }

    #[test]
    fn mobility_engines_print_identical_reports() {
        let args = [
            "--ues",
            "80",
            "--speed",
            "12",
            "--epochs",
            "6",
            "--policy",
            "sticky",
            "--stationary",
            "0.5",
        ];
        let incremental =
            run(&[&["mobility", "--engine", "incremental"], &args[..]].concat()).unwrap();
        let scratch = run(&[&["mobility", "--engine", "scratch"], &args[..]].concat()).unwrap();
        assert_eq!(incremental, scratch);
    }

    #[test]
    fn mobility_rejects_unknown_engine() {
        let err = run(&["mobility", "--engine", "warp"]).unwrap_err();
        assert!(err.to_string().contains("--engine"));
    }

    #[test]
    fn sharded_runs_print_identical_reports() {
        let args = ["--rate", "10", "--epochs", "8"];
        let unsharded = run(&[&["dynamic"], &args[..]].concat()).unwrap();
        let count = run(&[&["dynamic", "--shards", "4"], &args[..]].concat()).unwrap();
        let grid = run(&[&["dynamic", "--shard-grid", "2x2"], &args[..]].concat()).unwrap();
        assert_eq!(unsharded, count);
        assert_eq!(unsharded, grid);

        let margs = ["--ues", "60", "--speed", "12", "--epochs", "5"];
        let m_unsharded = run(&[&["mobility"], &margs[..]].concat()).unwrap();
        let m_sharded = run(&[&["mobility", "--shard-grid", "3x3"], &margs[..]].concat()).unwrap();
        assert_eq!(m_unsharded, m_sharded);
    }

    #[test]
    fn shard_flags_are_validated() {
        // Mutually exclusive flags.
        let err = run(&["dynamic", "--shards", "4", "--shard-grid", "2x2"]).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        // Sharding fans out the incremental engine only.
        for engine in ["event", "scratch"] {
            let err = run(&["dynamic", "--shards", "4", "--engine", engine]).unwrap_err();
            assert!(err.to_string().contains("incremental"), "engine {engine}");
        }
        let err = run(&["mobility", "--shards", "2", "--engine", "scratch"]).unwrap_err();
        assert!(err.to_string().contains("incremental"));
        // Malformed values.
        let err = run(&["dynamic", "--shard-grid", "2by2"]).unwrap_err();
        assert!(err.to_string().contains("3x3"));
        let err = run(&["dynamic", "--shards", "none"]).unwrap_err();
        assert!(err.to_string().contains("shard count"));
        let err = run(&["dynamic", "--shards", "0"]).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn mobility_rejects_bad_stationary_fraction() {
        let err = run(&["mobility", "--stationary", "1.5"]).unwrap_err();
        assert!(err.to_string().contains("stationary"));
    }

    #[test]
    fn candidate_batch_exact_is_the_default_and_garbage_is_rejected() {
        // The approx path is exercised in tests/candidate_batch.rs, which
        // runs in its own process: flipping the process-global kernel
        // mode here would race the other unit tests.
        let exact = run(&["run", "--ues", "60", "--candidate-batch", "exact"]).unwrap();
        let default = run(&["run", "--ues", "60"]).unwrap();
        assert_eq!(exact, default);
        let err = run(&["run", "--candidate-batch", "fuzzy"]).unwrap_err();
        assert!(err.to_string().contains("--candidate-batch"));
    }

    #[test]
    fn solve_components_reports_are_identical_and_garbage_is_rejected() {
        // Unlike --candidate-batch approx, the component path is
        // bit-identical by contract, so racing the process-global default
        // against concurrently running unit tests cannot change any
        // outcome — only which execution strategy computed it.
        let mono = run(&["run", "--ues", "80", "--solve", "monolithic"]).unwrap();
        let comp = run(&["run", "--ues", "80", "--solve", "components"]).unwrap();
        let delta = run(&["run", "--ues", "80", "--solve", "delta"]).unwrap();
        let default = run(&["run", "--ues", "80"]).unwrap();
        assert_eq!(mono, comp);
        assert_eq!(mono, delta);
        assert_eq!(mono, default);

        let args = ["--rate", "10", "--epochs", "8"];
        let d_mono = run(&[&["dynamic"], &args[..]].concat()).unwrap();
        let d_comp = run(&[&["dynamic", "--solve", "components"], &args[..]].concat()).unwrap();
        let d_delta = run(&[&["dynamic", "--solve", "delta"], &args[..]].concat()).unwrap();
        let d_shard = run(&[
            &["dynamic", "--solve", "components", "--shards", "4"],
            &args[..],
        ]
        .concat())
        .unwrap();
        assert_eq!(d_mono, d_comp);
        assert_eq!(d_mono, d_delta);
        assert_eq!(d_mono, d_shard);

        let margs = ["--ues", "60", "--speed", "12", "--epochs", "5"];
        let m_mono = run(&[&["mobility"], &margs[..]].concat()).unwrap();
        let m_comp = run(&[&["mobility", "--solve", "components"], &margs[..]].concat()).unwrap();
        let m_delta = run(&[&["mobility", "--solve", "delta"], &margs[..]].concat()).unwrap();
        let m_delta_shard = run(&[
            &["mobility", "--solve", "delta", "--shards", "4"],
            &margs[..],
        ]
        .concat())
        .unwrap();
        assert_eq!(m_mono, m_comp);
        assert_eq!(m_mono, m_delta);
        assert_eq!(m_mono, m_delta_shard);

        let err = run(&["run", "--solve", "psychic"]).unwrap_err();
        assert!(err.to_string().contains("--solve"));
    }

    #[test]
    fn plan_reports_blocking() {
        let text = run(&["plan", "--rate", "200", "--holding", "5"]).unwrap();
        assert!(text.contains("predicted blocking"));
        assert!(text.contains("erlang"));
    }

    #[test]
    fn sweep_emits_csv_when_asked() {
        // reps 1 and the smallest sweep still goes through all UE counts;
        // keep it cheap but real.
        let text = run(&["sweep", "--reps", "1", "--format", "csv"]).unwrap();
        assert!(text.starts_with("#UEs,DMRA_mean"));
    }

    #[test]
    fn run_output_is_identical_across_thread_counts() {
        let serial = run(&["run", "--ues", "80", "--threads", "1"]).unwrap();
        let par = run(&["run", "--ues", "80", "--threads", "3"]).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn threads_rejects_garbage() {
        let err = run(&["run", "--ues", "40", "--threads", "many"]).unwrap_err();
        assert!(err.to_string().contains("cannot parse"));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let err = run(&["dynamic", "--warp", "9"]).unwrap_err();
        assert!(err.to_string().contains("--warp"));
    }

    #[test]
    fn bad_log_level_is_rejected() {
        let err = run(&["run", "--ues", "40", "--log-level", "chatty"]).unwrap_err();
        assert!(err.to_string().contains("chatty"));
    }

    #[test]
    fn quiet_and_verbose_flags_are_accepted_everywhere() {
        run(&["plan", "--quiet"]).unwrap();
        run(&["plan", "-v"]).unwrap();
    }

    #[test]
    fn trace_out_writes_json_and_appends_report() {
        let path = std::env::temp_dir().join(format!("dmra-trace-{}.json", std::process::id()));
        let text = run(&[
            "dynamic",
            "--rate",
            "10",
            "--epochs",
            "8",
            "--holding",
            "2",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        // The command output still leads, then the telemetry report.
        assert!(text.contains("admitted"));
        assert!(text.contains("telemetry report"));
        assert!(text.contains("dmra.solves"));
        assert!(text.contains("sim.epoch_ns"));
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"schema\": \"dmra-obs/1\""));
        assert!(json.contains("\"command\": \"dynamic\""));
        assert!(json.contains("\"sim.epoch\""));
        assert!(json.contains("\"dmra.solve\""));
        assert!(json.contains("\"online.epoch_build\""));
        // Telemetry is switched off again after the traced run.
        assert!(!dmra_obs::enabled());
    }

    #[test]
    fn record_writes_jsonl_flight_records() {
        let path = std::env::temp_dir().join(format!("dmra-record-{}.jsonl", std::process::id()));
        let text = run(&[
            "dynamic",
            "--rate",
            "10",
            "--epochs",
            "8",
            "--holding",
            "2",
            "--record",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("admitted"));
        assert!(text.contains("flight record:"), "{text}");
        let jsonl = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Every line is a flight record; the dynamic run contributed
        // `sim.epoch` records (other concurrently running tests may have
        // appended records of other streams through the global slot).
        assert!(jsonl.lines().count() >= 8, "{jsonl}");
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with("{\"schema\": \"dmra-flight/1\"")));
        assert!(jsonl.contains("\"stream\": \"sim.epoch\""));
        assert!(jsonl.contains("\"digest\":"));
    }

    #[test]
    fn protocol_record_emits_round_stream() {
        let path =
            std::env::temp_dir().join(format!("dmra-record-proto-{}.jsonl", std::process::id()));
        run(&[
            "protocol",
            "--ues",
            "60",
            "--record",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let jsonl = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(jsonl.contains("\"stream\": \"proto.round\""), "{jsonl}");
        assert!(jsonl.contains("\"delivered\":"));
    }

    #[test]
    fn sample_every_requires_record_and_rejects_zero() {
        let err = run(&["dynamic", "--sample-every", "3"]).unwrap_err();
        assert!(err.to_string().contains("--record"));
        let path = std::env::temp_dir().join(format!("dmra-se0-{}.jsonl", std::process::id()));
        let err = run(&[
            "dynamic",
            "--record",
            path.to_str().unwrap(),
            "--sample-every",
            "0",
        ])
        .unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn metrics_addr_binds_and_serves_for_the_run() {
        let text = run(&[
            "dynamic",
            "--rate",
            "8",
            "--epochs",
            "6",
            "--holding",
            "2",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .unwrap();
        assert!(text.contains("admitted"));
        let err = run(&["dynamic", "--metrics-addr", "256.0.0.1:0"]).unwrap_err();
        assert!(err.to_string().contains("metrics server"));
    }
}
