//! Library half of the `dmra` command-line tool.
//!
//! Commands (see `dmra help` for the synopsis):
//!
//! * `run` — one scenario, one or all algorithms, metric table to stdout.
//! * `sweep` — UE-count sweep with replications, markdown/CSV output.
//! * `protocol` — decentralized execution with message statistics and
//!   optional loss injection.
//! * `dynamic` — the online arrival/departure regime.
//!
//! Everything is a thin shim over `dmra-sim`; keeping the logic here (and
//! unit-tested) leaves `main.rs` as pure I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
mod commands;

pub use args::{ArgError, ParsedArgs};
pub use commands::{dispatch, help_text};
