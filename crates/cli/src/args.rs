//! A small, dependency-free argument parser for the `dmra` binary.
//!
//! Grammar: `dmra <command> [--key value]... [--flag]...`. Keys are
//! validated per command; unknown keys are errors, every key takes exactly
//! one value. The only valueless arguments are the global verbosity flags
//! (`--quiet`, `--verbose` / `-v`), which any command accepts. No external
//! CLI crate is used (DESIGN.md limits the dependency set to the
//! numeric/test stack).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Valueless flags accepted by every command (the verbosity switches).
const GLOBAL_FLAGS: &[&str] = &["quiet", "verbose"];

/// A parsed command line: the command word plus its `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The command word (`run`, `sweep`, `protocol`, `dynamic`, `help`).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: BTreeSet<String>,
}

/// A parse or validation failure, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a missing command, a key without a value,
    /// or a positional argument after the command.
    pub fn parse<I, S>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = args.into_iter().map(Into::into);
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing command; try `dmra help`".into()))?;
        let mut options = BTreeMap::new();
        let mut flags = BTreeSet::new();
        while let Some(arg) = iter.next() {
            if arg == "-v" {
                flags.insert("verbose".to_owned());
                continue;
            }
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument '{arg}' (options are --key value)"
                )));
            };
            if GLOBAL_FLAGS.contains(&key) {
                flags.insert(key.to_owned());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("option --{key} requires a value")))?;
            if options.insert(key.to_owned(), value).is_some() {
                return Err(ArgError(format!("option --{key} given twice")));
            }
        }
        Ok(Self {
            command,
            options,
            flags,
        })
    }

    /// Returns `true` when the given global flag (`quiet`, `verbose`) was
    /// present, either spelled out or via its short alias.
    #[must_use]
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.contains(flag)
    }

    /// Rejects any option key outside `allowed`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unknown option.
    pub fn expect_keys(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{key} for '{}' (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Returns a string option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Returns a typed option, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("option --{key}: cannot parse '{raw}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_options() {
        let p = ParsedArgs::parse(["run", "--ues", "600", "--algo", "dmra"]).unwrap();
        assert_eq!(p.command, "run");
        assert_eq!(p.get("ues"), Some("600"));
        assert_eq!(p.get_or("ues", 0usize).unwrap(), 600);
        assert_eq!(p.get_or("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn missing_command_is_an_error() {
        let err = ParsedArgs::parse(Vec::<String>::new()).unwrap_err();
        assert!(err.to_string().contains("missing command"));
    }

    #[test]
    fn key_without_value_is_an_error() {
        let err = ParsedArgs::parse(["run", "--ues"]).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
    }

    #[test]
    fn duplicate_key_is_an_error() {
        let err = ParsedArgs::parse(["run", "--ues", "1", "--ues", "2"]).unwrap_err();
        assert!(err.to_string().contains("given twice"));
    }

    #[test]
    fn positional_after_command_is_an_error() {
        let err = ParsedArgs::parse(["run", "oops"]).unwrap_err();
        assert!(err.to_string().contains("unexpected positional"));
    }

    #[test]
    fn unknown_key_is_rejected_by_validation() {
        let p = ParsedArgs::parse(["run", "--bogus", "1"]).unwrap();
        let err = p.expect_keys(&["ues", "seed"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
        assert!(err.to_string().contains("--ues"));
    }

    #[test]
    fn bad_typed_value_is_an_error() {
        let p = ParsedArgs::parse(["run", "--ues", "lots"]).unwrap();
        let err = p.get_or("ues", 0usize).unwrap_err();
        assert!(err.to_string().contains("cannot parse"));
    }

    #[test]
    fn global_flags_take_no_value() {
        let p = ParsedArgs::parse(["run", "--quiet", "--ues", "80"]).unwrap();
        assert!(p.has_flag("quiet"));
        assert!(!p.has_flag("verbose"));
        assert_eq!(p.get("ues"), Some("80"));
        // Flags do not participate in key validation.
        p.expect_keys(&["ues"]).unwrap();
    }

    #[test]
    fn short_v_is_verbose() {
        let p = ParsedArgs::parse(["dynamic", "-v"]).unwrap();
        assert!(p.has_flag("verbose"));
        let p = ParsedArgs::parse(["dynamic", "--verbose"]).unwrap();
        assert!(p.has_flag("verbose"));
    }
}
