//! The `dmra` binary: parse, dispatch, print.
//!
//! Results go to stdout; diagnostics go through the `dmra-obs` logging
//! facade on stderr, so piped output stays machine-readable.

use dmra_cli::{dispatch, ParsedArgs};
use dmra_obs::obs_error;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(args) {
        Ok(parsed) => parsed,
        Err(err) => {
            obs_error!("{err}");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(&parsed) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            obs_error!("{err}");
            ExitCode::FAILURE
        }
    }
}
