//! The `dmra` binary: parse, dispatch, print.

use dmra_cli::{dispatch, ParsedArgs};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(args) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(&parsed) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
