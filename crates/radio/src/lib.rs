//! The OFDMA uplink model of the paper's Section III-C.
//!
//! The allocation algorithms never touch raw radio physics directly — they
//! consume three derived quantities per UE–BS pair:
//!
//! * the SINR `λ_{u,i}`,
//! * the per-RRB Shannon rate `e_{u,i} = W_sub · log2(1 + λ_{u,i})`
//!   (Eq. (2)),
//! * the RRB demand `n_{u,i} = ⌈w_u / e_{u,i}⌉` (Eq. (3)).
//!
//! This crate computes those from the paper's link budget: a UE transmit
//! power (10 dBm), the 3GPP-style path-loss model
//! `PL(d) = 140.7 + 36.7·log10(d_km)` dB (Eq. (18)), optional log-normal
//! shadowing, and a noise/interference floor. Everything is deterministic;
//! shadowing derives its randomness from the link endpoints' identifiers so
//! that evaluation order never matters.
//!
//! # Examples
//!
//! ```
//! use dmra_radio::{LinkEvaluator, RadioConfig};
//! use dmra_types::{BitsPerSec, Dbm, Point};
//!
//! let eval = LinkEvaluator::new(RadioConfig::paper_defaults());
//! let link = eval.evaluate(
//!     Dbm::new(10.0),
//!     Point::new(0.0, 0.0),
//!     Point::new(300.0, 0.0),
//! );
//! assert!(link.per_rrb_rate.get() > 0.0);
//! let n = eval
//!     .rrbs_required(BitsPerSec::from_mbps(4.0), link.per_rrb_rate)
//!     .expect("link can carry data");
//! assert!(n.get() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod link;
mod pathloss;
mod shadowing;

pub use config::{InterferenceModel, NoiseModel, RadioConfig};
pub use link::{
    batch_mode_default, set_batch_mode_default, BatchMode, LinkBatch, LinkEvaluator, LinkMetrics,
};
pub use pathloss::PathLossModel;
pub use shadowing::Shadowing;
