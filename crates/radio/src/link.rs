//! Per-link evaluation: from geometry and powers to SINR, per-RRB rate and
//! RRB demand.

use crate::config::RadioConfig;
use dmra_types::{BitsPerSec, Db, Dbm, Meters, Point, RrbCount};

/// Everything the allocation layer needs to know about one UE–BS link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMetrics {
    /// Euclidean distance `d_{i,u}` between the endpoints.
    pub distance: Meters,
    /// Attenuation (path loss plus shadowing) on the link.
    pub attenuation: Db,
    /// Received power at the BS.
    pub rx_power: Dbm,
    /// `λ_{u,i}`: linear signal-to-interference-plus-noise ratio.
    pub sinr_linear: f64,
    /// `e_{u,i}`: Shannon rate of one RRB on this link (Eq. (2)).
    pub per_rrb_rate: BitsPerSec,
}

impl LinkMetrics {
    /// The SINR in decibels.
    #[must_use]
    pub fn sinr_db(&self) -> Db {
        Db::from_linear(self.sinr_linear)
    }
}

/// Evaluates links under a fixed [`RadioConfig`].
///
/// The evaluator is cheap to clone and stateless; all randomness
/// (shadowing) is a deterministic function of the link endpoints.
#[derive(Debug, Clone)]
pub struct LinkEvaluator {
    config: RadioConfig,
    noise_mw: f64,
}

impl LinkEvaluator {
    /// Creates an evaluator, precomputing the per-RRB noise floor.
    #[must_use]
    pub fn new(config: RadioConfig) -> Self {
        let noise_mw = config.noise_power_per_rrb_mw();
        Self { config, noise_mw }
    }

    /// The configuration this evaluator was built with.
    #[must_use]
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// Evaluates the link assuming no cross-UE interference (SINR = SNR).
    #[must_use]
    pub fn evaluate(&self, tx_power: Dbm, ue: Point, bs: Point) -> LinkMetrics {
        self.evaluate_with_interference(tx_power, ue, bs, 0.0)
    }

    /// Evaluates the link with an explicit aggregate interference power (in
    /// linear milliwatts) added to the noise floor.
    ///
    /// The aggregate is supplied by the caller because it depends on *all*
    /// UEs in the network, which the evaluator deliberately does not know
    /// about (see [`InterferenceModel::LoadProportional`]).
    ///
    /// [`InterferenceModel::LoadProportional`]:
    /// crate::InterferenceModel::LoadProportional
    #[must_use]
    pub fn evaluate_with_interference(
        &self,
        tx_power: Dbm,
        ue: Point,
        bs: Point,
        interference_mw: f64,
    ) -> LinkMetrics {
        self.evaluate_at_distance(tx_power, ue, bs, ue.distance(bs), interference_mw)
    }

    /// [`LinkEvaluator::evaluate_with_interference`] with the UE–BS
    /// distance supplied by the caller, for hot loops that already hold it
    /// (a spatial index computes it while filtering candidates).
    ///
    /// `distance` must equal `ue.distance(bs)` — the result is then
    /// bit-identical to [`LinkEvaluator::evaluate_with_interference`].
    #[must_use]
    pub fn evaluate_at_distance(
        &self,
        tx_power: Dbm,
        ue: Point,
        bs: Point,
        distance: Meters,
        interference_mw: f64,
    ) -> LinkMetrics {
        debug_assert!(
            interference_mw >= 0.0,
            "interference power cannot be negative"
        );
        debug_assert!(
            distance == ue.distance(bs),
            "supplied distance must be the exact UE–BS distance"
        );
        let attenuation =
            self.config.path_loss.loss(distance) + self.config.shadowing.sample(ue, bs);
        let rx_power = tx_power.attenuate(attenuation);
        let sinr_linear = rx_power.to_milliwatts() / (self.noise_mw + interference_mw);
        let per_rrb_rate =
            BitsPerSec::new(self.config.rrb_bandwidth.get() * (1.0 + sinr_linear).log2());
        LinkMetrics {
            distance,
            attenuation,
            rx_power,
            sinr_linear,
            per_rrb_rate,
        }
    }

    /// Received power of a transmitter at a BS, in linear milliwatts — the
    /// building block for aggregate interference terms.
    #[must_use]
    pub fn rx_power_mw(&self, tx_power: Dbm, ue: Point, bs: Point) -> f64 {
        let attenuation =
            self.config.path_loss.loss(ue.distance(bs)) + self.config.shadowing.sample(ue, bs);
        tx_power.attenuate(attenuation).to_milliwatts()
    }

    /// `n_{u,i} = ⌈w_u / e_{u,i}⌉` (Eq. (3)).
    ///
    /// Returns `None` when the link cannot carry data at all (`e ≤ 0`, which
    /// only happens for a degenerate zero-SINR link) or when the demand
    /// would need more RRBs than can be counted.
    #[must_use]
    pub fn rrbs_required(&self, demand: BitsPerSec, per_rrb_rate: BitsPerSec) -> Option<RrbCount> {
        if per_rrb_rate.get() <= 0.0 || !per_rrb_rate.is_finite() {
            return None;
        }
        if demand.get() <= 0.0 {
            return Some(RrbCount::ZERO);
        }
        let n = (demand.get() / per_rrb_rate.get()).ceil();
        if n > f64::from(u32::MAX) {
            return None;
        }
        Some(RrbCount::new(n as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn eval() -> LinkEvaluator {
        LinkEvaluator::new(RadioConfig::paper_defaults())
    }

    const BS: Point = Point::new(0.0, 0.0);

    #[test]
    fn link_budget_at_300m_matches_hand_calc() {
        // PL(300 m) ≈ 121.51 dB; rx = 10 − 121.51 = −111.51 dBm;
        // noise = −170 dBm (paper literal) ⇒ SNR ≈ 58.49 dB;
        // e = 180 kHz · log2(1 + 10^5.849) ≈ 3.497 Mbit/s.
        let m = eval().evaluate(Dbm::new(10.0), Point::new(300.0, 0.0), BS);
        assert!((m.rx_power.get() - (-111.51)).abs() < 0.05, "{m:?}");
        assert!((m.sinr_db().get() - 58.49).abs() < 0.1, "{m:?}");
        assert!(
            (m.per_rrb_rate.get() - 3_497_000.0).abs() < 10_000.0,
            "{m:?}"
        );
    }

    #[test]
    fn psd_noise_reading_gives_much_lower_rates() {
        // The ablation reading: −170 dBm/Hz PSD ⇒ −117.45 dBm per RRB,
        // SNR ≈ 5.94 dB at 300 m, e ≈ 412 kbit/s.
        let mut cfg = RadioConfig::paper_defaults();
        cfg.noise = crate::NoiseModel::PsdDbmPerHz(-170.0);
        let m = LinkEvaluator::new(cfg).evaluate(Dbm::new(10.0), Point::new(300.0, 0.0), BS);
        assert!((m.sinr_db().get() - 5.94).abs() < 0.1, "{m:?}");
        assert!((m.per_rrb_rate.get() - 412_000.0).abs() < 5_000.0, "{m:?}");
    }

    #[test]
    fn farther_ue_needs_more_rrbs() {
        let e = eval();
        let demand = BitsPerSec::from_mbps(4.0);
        let mut prev = RrbCount::ZERO;
        for d in [100.0, 200.0, 400.0, 800.0, 1600.0] {
            let m = e.evaluate(Dbm::new(10.0), Point::new(d, 0.0), BS);
            let n = e.rrbs_required(demand, m.per_rrb_rate).unwrap();
            assert!(n >= prev, "RRB demand must not shrink with distance");
            prev = n;
        }
        assert!(prev.get() > 1);
    }

    #[test]
    fn paper_scale_rrb_demands_are_plausible() {
        // Sanity for the figures: at paper distances a 2–6 Mbit/s demand
        // costs 1–3 RRBs, so a 55-RRB BS serves a few dozen UEs and the
        // network saturates within the paper's 400–900 UE sweep.
        let e = eval();
        let m = e.evaluate(Dbm::new(10.0), Point::new(212.0, 212.0), BS); // 300 m
        let n_lo = e
            .rrbs_required(BitsPerSec::from_mbps(2.0), m.per_rrb_rate)
            .unwrap();
        let n_hi = e
            .rrbs_required(BitsPerSec::from_mbps(6.0), m.per_rrb_rate)
            .unwrap();
        assert_eq!(n_lo.get(), 1, "n_lo = {n_lo}");
        assert_eq!(n_hi.get(), 2, "n_hi = {n_hi}");
    }

    #[test]
    fn interference_reduces_rate() {
        let e = eval();
        let clean = e.evaluate(Dbm::new(10.0), Point::new(300.0, 0.0), BS);
        let noisy = e.evaluate_with_interference(
            Dbm::new(10.0),
            Point::new(300.0, 0.0),
            BS,
            e.config().noise_power_per_rrb_mw() * 3.0,
        );
        assert!(noisy.per_rrb_rate < clean.per_rrb_rate);
        assert!((clean.sinr_linear / noisy.sinr_linear - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rrbs_required_edge_cases() {
        let e = eval();
        // Zero demand costs zero RRBs.
        assert_eq!(
            e.rrbs_required(BitsPerSec::new(0.0), BitsPerSec::new(1000.0)),
            Some(RrbCount::ZERO)
        );
        // Dead link carries nothing.
        assert_eq!(
            e.rrbs_required(BitsPerSec::from_mbps(1.0), BitsPerSec::new(0.0)),
            None
        );
        // Exact division does not over-allocate.
        assert_eq!(
            e.rrbs_required(BitsPerSec::new(1000.0), BitsPerSec::new(500.0)),
            Some(RrbCount::new(2))
        );
        // Any remainder rounds up.
        assert_eq!(
            e.rrbs_required(BitsPerSec::new(1001.0), BitsPerSec::new(500.0)),
            Some(RrbCount::new(3))
        );
    }

    #[test]
    fn rx_power_mw_consistent_with_evaluate() {
        let e = eval();
        let ue = Point::new(250.0, 100.0);
        let m = e.evaluate(Dbm::new(10.0), ue, BS);
        let mw = e.rx_power_mw(Dbm::new(10.0), ue, BS);
        assert!((m.rx_power.to_milliwatts() - mw).abs() < 1e-18);
    }

    proptest! {
        #[test]
        fn prop_rate_positive_and_monotone_in_distance(
            d1 in 1.0f64..3000.0,
            d2 in 1.0f64..3000.0,
        ) {
            let e = eval();
            let m1 = e.evaluate(Dbm::new(10.0), Point::new(d1, 0.0), BS);
            let m2 = e.evaluate(Dbm::new(10.0), Point::new(d2, 0.0), BS);
            prop_assert!(m1.per_rrb_rate.get() > 0.0);
            if d1 < d2 {
                prop_assert!(m1.per_rrb_rate >= m2.per_rrb_rate);
            }
        }

        #[test]
        fn prop_rrbs_cover_demand(
            demand_mbps in 0.1f64..20.0,
            rate_kbps in 10.0f64..2000.0,
        ) {
            let e = eval();
            let demand = BitsPerSec::from_mbps(demand_mbps);
            let rate = BitsPerSec::new(rate_kbps * 1e3);
            let n = e.rrbs_required(demand, rate).unwrap();
            // n RRBs must carry the demand; n−1 must not.
            prop_assert!(n.as_f64() * rate.get() >= demand.get() - 1e-6);
            if n.get() > 0 {
                prop_assert!((n.as_f64() - 1.0) * rate.get() < demand.get());
            }
        }
    }
}
