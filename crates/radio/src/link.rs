//! Per-link evaluation: from geometry and powers to SINR, per-RRB rate and
//! RRB demand.
//!
//! Two evaluation shapes share the same physics:
//!
//! * the scalar chain ([`LinkEvaluator::evaluate_at_distance`]), one link
//!   at a time — the executable specification;
//! * the batched kernel ([`LinkEvaluator::evaluate_batch`]), which takes
//!   one UE's whole pruned candidate slice and computes path loss, SINR
//!   and per-RRB rate in structure-of-arrays passes. Under
//!   [`BatchMode::Exact`] (the default) every lane performs the scalar
//!   chain's operations in the scalar chain's order, so the outputs are
//!   **bit-identical** to `evaluate_at_distance` — pinned by property
//!   tests. [`BatchMode::Approx`] is the opt-in fast lane: `log10`, `2^x`
//!   rewritten through shared polynomial `ln`/`exp` helpers with no libm
//!   calls inside the loops, so LLVM can auto-vectorize the passes; it is
//!   accurate to ≲1e−10 relative error (also property-tested) but *not*
//!   bit-identical, which is why it is never the default.

use crate::config::RadioConfig;
use dmra_types::{BitsPerSec, Db, Dbm, Meters, Point, RrbCount};
use std::sync::atomic::{AtomicBool, Ordering};

/// How [`LinkEvaluator::evaluate_batch`] computes its transcendentals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Per-lane operations identical to the scalar chain: bit-identical
    /// outputs, still benefits from the structure-of-arrays layout.
    #[default]
    Exact,
    /// Polynomial `ln`/`exp` replacements (no libm in the loop): the
    /// passes auto-vectorize, outputs agree with the scalar chain to
    /// ≲1e−10 relative error. Opt in via `--candidate-batch approx` or
    /// [`set_batch_mode_default`].
    Approx,
}

/// Process-wide default consumed by [`LinkEvaluator::new`] (`false` =
/// [`BatchMode::Exact`]). A plain relaxed atomic: the flag is set once at
/// CLI startup, before any evaluator exists.
static BATCH_MODE_APPROX: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide default [`BatchMode`] picked up by every
/// subsequently constructed [`LinkEvaluator`]. Intended for CLI startup
/// (`--candidate-batch`); library code should use
/// [`LinkEvaluator::with_batch_mode`] instead.
pub fn set_batch_mode_default(mode: BatchMode) {
    BATCH_MODE_APPROX.store(mode == BatchMode::Approx, Ordering::Relaxed);
}

/// The current process-wide default [`BatchMode`].
#[must_use]
pub fn batch_mode_default() -> BatchMode {
    if BATCH_MODE_APPROX.load(Ordering::Relaxed) {
        BatchMode::Approx
    } else {
        BatchMode::Exact
    }
}

/// Everything the allocation layer needs to know about one UE–BS link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMetrics {
    /// Euclidean distance `d_{i,u}` between the endpoints.
    pub distance: Meters,
    /// Attenuation (path loss plus shadowing) on the link.
    pub attenuation: Db,
    /// Received power at the BS.
    pub rx_power: Dbm,
    /// `λ_{u,i}`: linear signal-to-interference-plus-noise ratio.
    pub sinr_linear: f64,
    /// `e_{u,i}`: Shannon rate of one RRB on this link (Eq. (2)).
    pub per_rrb_rate: BitsPerSec,
}

impl LinkMetrics {
    /// The SINR in decibels.
    #[must_use]
    pub fn sinr_db(&self) -> Db {
        Db::from_linear(self.sinr_linear)
    }
}

/// Reusable structure-of-arrays scratch for [`LinkEvaluator::evaluate_batch`].
///
/// The caller clears it, pushes one lane per candidate BS (carrying the
/// exact distance a pruning query measured), runs the batch kernel, and
/// reads the results back per lane. All buffers are retained across
/// `clear` calls, so a hot loop allocates only until its high-water batch
/// size.
#[derive(Debug, Clone, Default)]
pub struct LinkBatch {
    /// Caller-owned lane tag (the BS index, for the candidate scan).
    tag: Vec<u32>,
    /// Candidate BS positions (shadowing is a function of the endpoints).
    bs_pos: Vec<Point>,
    /// Exact UE–BS distances, in meters.
    dist: Vec<f64>,
    /// Per-lane aggregate received power at the BS (interference input;
    /// zero when the interference factor is zero).
    total_rx_mw: Vec<f64>,
    /// Attenuation (path loss + shadowing), dB.
    att: Vec<f64>,
    /// Received power, dBm.
    rx_dbm: Vec<f64>,
    /// Received power, linear milliwatts.
    rx_mw: Vec<f64>,
    /// Linear SINR.
    sinr: Vec<f64>,
    /// Per-RRB Shannon rate, bit/s.
    rate: Vec<f64>,
}

impl LinkBatch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the batch, retaining capacity.
    pub fn clear(&mut self) {
        self.tag.clear();
        self.bs_pos.clear();
        self.dist.clear();
        self.total_rx_mw.clear();
    }

    /// Adds one candidate lane. `distance` must be the exact UE–BS
    /// distance (same contract as
    /// [`LinkEvaluator::evaluate_at_distance`]); `total_rx_mw` is the
    /// aggregate received power at this BS, or `0.0` under noise-only.
    pub fn push(&mut self, tag: u32, bs: Point, distance: Meters, total_rx_mw: f64) {
        self.tag.push(tag);
        self.bs_pos.push(bs);
        self.dist.push(distance.get());
        self.total_rx_mw.push(total_rx_mw);
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tag.len()
    }

    /// Whether the batch has no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tag.is_empty()
    }

    /// The caller-supplied tag of lane `j`.
    #[must_use]
    pub fn tag(&self, j: usize) -> u32 {
        self.tag[j]
    }

    /// The full metrics of lane `j` (valid after
    /// [`LinkEvaluator::evaluate_batch`]). Under [`BatchMode::Exact`]
    /// this is bit-identical to the scalar
    /// [`LinkEvaluator::evaluate_at_distance`] result for the lane.
    #[must_use]
    pub fn metrics(&self, j: usize) -> LinkMetrics {
        LinkMetrics {
            distance: Meters::new(self.dist[j]),
            attenuation: Db::new(self.att[j]),
            rx_power: Dbm::new(self.rx_dbm[j]),
            sinr_linear: self.sinr[j],
            per_rrb_rate: BitsPerSec::new(self.rate[j]),
        }
    }
}

/// `ln(x)` without libm, for the [`BatchMode::Approx`] lanes: exponent
/// split via the bit pattern, mantissa via the atanh series on
/// `[√½, √2]`. Requires a positive, normal, finite input (all batch
/// operands are: clamped distances and `1 + SINR ≥ 1`). Relative error
/// ≲1e−12.
#[inline]
fn fast_ln(x: f64) -> f64 {
    debug_assert!(x.is_normal() && x > 0.0, "fast_ln needs a positive normal");
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // ln(m) = 2·atanh(t); |t| ≤ 0.172 so the truncation tail is ≤ 2e−13.
    let series = 2.0
        * t
        * (1.0
            + t2 * (1.0 / 3.0
                + t2 * (1.0 / 5.0
                    + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0 + t2 / 13.0))))));
    (e as f64) * std::f64::consts::LN_2 + series
}

/// `e^x` without libm, for the [`BatchMode::Approx`] lanes: power-of-two
/// split plus a degree-11 Taylor polynomial on `|r| ≤ ln2/2`. Valid for
/// the batch's operand range (|x| ≲ 700). Relative error ≲1e−13.
#[inline]
fn fast_exp(x: f64) -> f64 {
    let k = (x * std::f64::consts::LOG2_E).round();
    let r = x - k * std::f64::consts::LN_2;
    let mut poly = 1.0 / 39_916_800.0; // 1/11!
    for inv_fact in [
        1.0 / 3_628_800.0,
        1.0 / 362_880.0,
        1.0 / 40_320.0,
        1.0 / 5_040.0,
        1.0 / 720.0,
        1.0 / 120.0,
        1.0 / 24.0,
        1.0 / 6.0,
        0.5,
        1.0,
        1.0,
    ] {
        poly = poly * r + inv_fact;
    }
    // 2^k via the exponent field; k is within ±1074 for every finite
    // input this kernel sees, and the debug assert keeps it honest.
    let ik = k as i64;
    debug_assert!((-1022..=1023).contains(&ik), "fast_exp overflow: {x}");
    poly * f64::from_bits(((ik + 1023) as u64) << 52)
}

/// `log10(x)` via [`fast_ln`].
#[inline]
fn fast_log10(x: f64) -> f64 {
    fast_ln(x) * std::f64::consts::LOG10_E
}

/// `log2(x)` via [`fast_ln`].
#[inline]
fn fast_log2(x: f64) -> f64 {
    fast_ln(x) * std::f64::consts::LOG2_E
}

/// `10^x` via [`fast_exp`].
#[inline]
fn fast_pow10(x: f64) -> f64 {
    fast_exp(x * std::f64::consts::LN_10)
}

/// Evaluates links under a fixed [`RadioConfig`].
///
/// The evaluator is cheap to clone and stateless; all randomness
/// (shadowing) is a deterministic function of the link endpoints.
#[derive(Debug, Clone)]
pub struct LinkEvaluator {
    config: RadioConfig,
    noise_mw: f64,
    mode: BatchMode,
}

impl LinkEvaluator {
    /// Creates an evaluator, precomputing the per-RRB noise floor. The
    /// batch mode is the process-wide default ([`batch_mode_default`]),
    /// which is [`BatchMode::Exact`] unless the CLI opted in to the
    /// approximate lane.
    #[must_use]
    pub fn new(config: RadioConfig) -> Self {
        let noise_mw = config.noise_power_per_rrb_mw();
        Self {
            config,
            noise_mw,
            mode: batch_mode_default(),
        }
    }

    /// Overrides the [`BatchMode`] for this evaluator.
    #[must_use]
    pub fn with_batch_mode(mut self, mode: BatchMode) -> Self {
        self.mode = mode;
        self
    }

    /// The batch mode this evaluator runs under.
    #[must_use]
    pub fn batch_mode(&self) -> BatchMode {
        self.mode
    }

    /// The configuration this evaluator was built with.
    #[must_use]
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// Evaluates the link assuming no cross-UE interference (SINR = SNR).
    #[must_use]
    pub fn evaluate(&self, tx_power: Dbm, ue: Point, bs: Point) -> LinkMetrics {
        self.evaluate_with_interference(tx_power, ue, bs, 0.0)
    }

    /// Evaluates the link with an explicit aggregate interference power (in
    /// linear milliwatts) added to the noise floor.
    ///
    /// The aggregate is supplied by the caller because it depends on *all*
    /// UEs in the network, which the evaluator deliberately does not know
    /// about (see [`InterferenceModel::LoadProportional`]).
    ///
    /// [`InterferenceModel::LoadProportional`]:
    /// crate::InterferenceModel::LoadProportional
    #[must_use]
    pub fn evaluate_with_interference(
        &self,
        tx_power: Dbm,
        ue: Point,
        bs: Point,
        interference_mw: f64,
    ) -> LinkMetrics {
        self.evaluate_at_distance(tx_power, ue, bs, ue.distance(bs), interference_mw)
    }

    /// [`LinkEvaluator::evaluate_with_interference`] with the UE–BS
    /// distance supplied by the caller, for hot loops that already hold it
    /// (a spatial index computes it while filtering candidates).
    ///
    /// `distance` must equal `ue.distance(bs)` — the result is then
    /// bit-identical to [`LinkEvaluator::evaluate_with_interference`].
    #[must_use]
    pub fn evaluate_at_distance(
        &self,
        tx_power: Dbm,
        ue: Point,
        bs: Point,
        distance: Meters,
        interference_mw: f64,
    ) -> LinkMetrics {
        debug_assert!(
            interference_mw >= 0.0,
            "interference power cannot be negative"
        );
        debug_assert!(
            distance == ue.distance(bs),
            "supplied distance must be the exact UE–BS distance"
        );
        let attenuation =
            self.config.path_loss.loss(distance) + self.config.shadowing.sample(ue, bs);
        let rx_power = tx_power.attenuate(attenuation);
        let sinr_linear = rx_power.to_milliwatts() / (self.noise_mw + interference_mw);
        let per_rrb_rate =
            BitsPerSec::new(self.config.rrb_bandwidth.get() * (1.0 + sinr_linear).log2());
        LinkMetrics {
            distance,
            attenuation,
            rx_power,
            sinr_linear,
            per_rrb_rate,
        }
    }

    /// Evaluates one UE's whole candidate slice in structure-of-arrays
    /// passes over the lanes pushed into `batch`.
    ///
    /// Lane `j` computes exactly what
    /// [`LinkEvaluator::evaluate_at_distance`] computes for
    /// `(tx_power, ue, batch.bs_pos[j], batch.dist[j])` with interference
    /// `interference_factor × (total_rx_mw[j] − own_rx)⁺` — the
    /// load-proportional term of the candidate scan. Under
    /// [`BatchMode::Exact`] every lane is bit-identical to the scalar
    /// chain; under [`BatchMode::Approx`] the transcendentals run through
    /// the polynomial helpers and agree to ≲1e−10 relative error. Results
    /// are read back with [`LinkBatch::metrics`].
    pub fn evaluate_batch(
        &self,
        tx_power: Dbm,
        ue: Point,
        interference_factor: f64,
        batch: &mut LinkBatch,
    ) {
        let n = batch.dist.len();
        batch.att.clear();
        batch.att.resize(n, 0.0);
        batch.rx_dbm.clear();
        batch.rx_dbm.resize(n, 0.0);
        batch.rx_mw.clear();
        batch.rx_mw.resize(n, 0.0);
        batch.sinr.clear();
        batch.sinr.resize(n, 0.0);
        batch.rate.clear();
        batch.rate.resize(n, 0.0);

        // Pass 1: attenuation = path loss + shadowing. The scalar chain
        // computes `loss(d) + sample(ue, bs)` as one f64 addition; doing
        // the loss and the shadowing in two passes performs the identical
        // addition per lane. The approximate lane hoists the model match
        // out of the loop and runs pure polynomial arithmetic inside it.
        match self.mode {
            BatchMode::Exact => {
                for j in 0..n {
                    batch.att[j] = self.config.path_loss.loss(Meters::new(batch.dist[j])).get();
                }
            }
            BatchMode::Approx => {
                use crate::PathLossModel;
                const MIN_D: f64 = 1.0; // the path-loss module's clamp
                match self.config.path_loss {
                    PathLossModel::Icdcs2019 => {
                        for j in 0..n {
                            batch.att[j] =
                                140.7 + 36.7 * fast_log10(batch.dist[j].max(MIN_D) / 1000.0);
                        }
                    }
                    PathLossModel::LogDistance {
                        ref_loss,
                        ref_distance,
                        exponent,
                    } => {
                        let d0 = ref_distance.get().max(MIN_D);
                        for j in 0..n {
                            batch.att[j] = ref_loss.get()
                                + 10.0 * exponent * fast_log10(batch.dist[j].max(MIN_D) / d0);
                        }
                    }
                    PathLossModel::FreeSpace { frequency } => {
                        let f_term = 20.0 * frequency.get().log10() - 147.55;
                        for j in 0..n {
                            batch.att[j] = 20.0 * fast_log10(batch.dist[j].max(MIN_D)) + f_term;
                        }
                    }
                    // `PathLossModel` is non-exhaustive: fall back to the
                    // exact per-lane evaluation for models this kernel
                    // has no fast lane for.
                    #[allow(unreachable_patterns)]
                    _ => {
                        for j in 0..n {
                            batch.att[j] =
                                self.config.path_loss.loss(Meters::new(batch.dist[j])).get();
                        }
                    }
                }
            }
        }
        // Shadowing is deterministic integer hashing per endpoint pair —
        // identical in both modes (its cost is not transcendental-bound).
        for j in 0..n {
            batch.att[j] += self.config.shadowing.sample(ue, batch.bs_pos[j]).get();
        }

        // Pass 2: received power in dBm (`Dbm::attenuate` is subtraction).
        let tx = tx_power.get();
        for j in 0..n {
            batch.rx_dbm[j] = tx - batch.att[j];
        }

        // Pass 3: dBm → linear milliwatts (`Dbm::to_milliwatts`).
        match self.mode {
            BatchMode::Exact => {
                for j in 0..n {
                    batch.rx_mw[j] = 10f64.powf(batch.rx_dbm[j] / 10.0);
                }
            }
            BatchMode::Approx => {
                for j in 0..n {
                    batch.rx_mw[j] = fast_pow10(batch.rx_dbm[j] / 10.0);
                }
            }
        }

        // Pass 4: SINR. The own-received-power term of the interference
        // model equals this lane's rx_mw bit for bit (same inputs, same
        // chain), so the scalar path's separate `rx_power_mw` call
        // disappears. With a zero factor the scalar chain divides by
        // `noise + 0.0`, which is `noise` for the positive floor.
        if interference_factor > 0.0 {
            for j in 0..n {
                let interference =
                    interference_factor * (batch.total_rx_mw[j] - batch.rx_mw[j]).max(0.0);
                batch.sinr[j] = batch.rx_mw[j] / (self.noise_mw + interference);
            }
        } else {
            for j in 0..n {
                batch.sinr[j] = batch.rx_mw[j] / self.noise_mw;
            }
        }

        // Pass 5: per-RRB Shannon rate (Eq. (2)).
        let bw = self.config.rrb_bandwidth.get();
        match self.mode {
            BatchMode::Exact => {
                for j in 0..n {
                    batch.rate[j] = bw * (1.0 + batch.sinr[j]).log2();
                }
            }
            BatchMode::Approx => {
                for j in 0..n {
                    batch.rate[j] = bw * fast_log2(1.0 + batch.sinr[j]);
                }
            }
        }
    }

    /// Received power of a transmitter at a BS, in linear milliwatts — the
    /// building block for aggregate interference terms.
    #[must_use]
    pub fn rx_power_mw(&self, tx_power: Dbm, ue: Point, bs: Point) -> f64 {
        let attenuation =
            self.config.path_loss.loss(ue.distance(bs)) + self.config.shadowing.sample(ue, bs);
        tx_power.attenuate(attenuation).to_milliwatts()
    }

    /// `n_{u,i} = ⌈w_u / e_{u,i}⌉` (Eq. (3)).
    ///
    /// Returns `None` when the link cannot carry data at all (`e ≤ 0`, which
    /// only happens for a degenerate zero-SINR link) or when the demand
    /// would need more RRBs than can be counted.
    #[must_use]
    pub fn rrbs_required(&self, demand: BitsPerSec, per_rrb_rate: BitsPerSec) -> Option<RrbCount> {
        if per_rrb_rate.get() <= 0.0 || !per_rrb_rate.is_finite() {
            return None;
        }
        if demand.get() <= 0.0 {
            return Some(RrbCount::ZERO);
        }
        let n = (demand.get() / per_rrb_rate.get()).ceil();
        if n > f64::from(u32::MAX) {
            return None;
        }
        Some(RrbCount::new(n as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn eval() -> LinkEvaluator {
        LinkEvaluator::new(RadioConfig::paper_defaults())
    }

    const BS: Point = Point::new(0.0, 0.0);

    #[test]
    fn link_budget_at_300m_matches_hand_calc() {
        // PL(300 m) ≈ 121.51 dB; rx = 10 − 121.51 = −111.51 dBm;
        // noise = −170 dBm (paper literal) ⇒ SNR ≈ 58.49 dB;
        // e = 180 kHz · log2(1 + 10^5.849) ≈ 3.497 Mbit/s.
        let m = eval().evaluate(Dbm::new(10.0), Point::new(300.0, 0.0), BS);
        assert!((m.rx_power.get() - (-111.51)).abs() < 0.05, "{m:?}");
        assert!((m.sinr_db().get() - 58.49).abs() < 0.1, "{m:?}");
        assert!(
            (m.per_rrb_rate.get() - 3_497_000.0).abs() < 10_000.0,
            "{m:?}"
        );
    }

    #[test]
    fn psd_noise_reading_gives_much_lower_rates() {
        // The ablation reading: −170 dBm/Hz PSD ⇒ −117.45 dBm per RRB,
        // SNR ≈ 5.94 dB at 300 m, e ≈ 412 kbit/s.
        let mut cfg = RadioConfig::paper_defaults();
        cfg.noise = crate::NoiseModel::PsdDbmPerHz(-170.0);
        let m = LinkEvaluator::new(cfg).evaluate(Dbm::new(10.0), Point::new(300.0, 0.0), BS);
        assert!((m.sinr_db().get() - 5.94).abs() < 0.1, "{m:?}");
        assert!((m.per_rrb_rate.get() - 412_000.0).abs() < 5_000.0, "{m:?}");
    }

    #[test]
    fn farther_ue_needs_more_rrbs() {
        let e = eval();
        let demand = BitsPerSec::from_mbps(4.0);
        let mut prev = RrbCount::ZERO;
        for d in [100.0, 200.0, 400.0, 800.0, 1600.0] {
            let m = e.evaluate(Dbm::new(10.0), Point::new(d, 0.0), BS);
            let n = e.rrbs_required(demand, m.per_rrb_rate).unwrap();
            assert!(n >= prev, "RRB demand must not shrink with distance");
            prev = n;
        }
        assert!(prev.get() > 1);
    }

    #[test]
    fn paper_scale_rrb_demands_are_plausible() {
        // Sanity for the figures: at paper distances a 2–6 Mbit/s demand
        // costs 1–3 RRBs, so a 55-RRB BS serves a few dozen UEs and the
        // network saturates within the paper's 400–900 UE sweep.
        let e = eval();
        let m = e.evaluate(Dbm::new(10.0), Point::new(212.0, 212.0), BS); // 300 m
        let n_lo = e
            .rrbs_required(BitsPerSec::from_mbps(2.0), m.per_rrb_rate)
            .unwrap();
        let n_hi = e
            .rrbs_required(BitsPerSec::from_mbps(6.0), m.per_rrb_rate)
            .unwrap();
        assert_eq!(n_lo.get(), 1, "n_lo = {n_lo}");
        assert_eq!(n_hi.get(), 2, "n_hi = {n_hi}");
    }

    #[test]
    fn interference_reduces_rate() {
        let e = eval();
        let clean = e.evaluate(Dbm::new(10.0), Point::new(300.0, 0.0), BS);
        let noisy = e.evaluate_with_interference(
            Dbm::new(10.0),
            Point::new(300.0, 0.0),
            BS,
            e.config().noise_power_per_rrb_mw() * 3.0,
        );
        assert!(noisy.per_rrb_rate < clean.per_rrb_rate);
        assert!((clean.sinr_linear / noisy.sinr_linear - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rrbs_required_edge_cases() {
        let e = eval();
        // Zero demand costs zero RRBs.
        assert_eq!(
            e.rrbs_required(BitsPerSec::new(0.0), BitsPerSec::new(1000.0)),
            Some(RrbCount::ZERO)
        );
        // Dead link carries nothing.
        assert_eq!(
            e.rrbs_required(BitsPerSec::from_mbps(1.0), BitsPerSec::new(0.0)),
            None
        );
        // Exact division does not over-allocate.
        assert_eq!(
            e.rrbs_required(BitsPerSec::new(1000.0), BitsPerSec::new(500.0)),
            Some(RrbCount::new(2))
        );
        // Any remainder rounds up.
        assert_eq!(
            e.rrbs_required(BitsPerSec::new(1001.0), BitsPerSec::new(500.0)),
            Some(RrbCount::new(3))
        );
    }

    #[test]
    fn rx_power_mw_consistent_with_evaluate() {
        let e = eval();
        let ue = Point::new(250.0, 100.0);
        let m = e.evaluate(Dbm::new(10.0), ue, BS);
        let mw = e.rx_power_mw(Dbm::new(10.0), ue, BS);
        assert!((m.rx_power.to_milliwatts() - mw).abs() < 1e-18);
    }

    proptest! {
        #[test]
        fn prop_rate_positive_and_monotone_in_distance(
            d1 in 1.0f64..3000.0,
            d2 in 1.0f64..3000.0,
        ) {
            let e = eval();
            let m1 = e.evaluate(Dbm::new(10.0), Point::new(d1, 0.0), BS);
            let m2 = e.evaluate(Dbm::new(10.0), Point::new(d2, 0.0), BS);
            prop_assert!(m1.per_rrb_rate.get() > 0.0);
            if d1 < d2 {
                prop_assert!(m1.per_rrb_rate >= m2.per_rrb_rate);
            }
        }

        #[test]
        fn prop_rrbs_cover_demand(
            demand_mbps in 0.1f64..20.0,
            rate_kbps in 10.0f64..2000.0,
        ) {
            let e = eval();
            let demand = BitsPerSec::from_mbps(demand_mbps);
            let rate = BitsPerSec::new(rate_kbps * 1e3);
            let n = e.rrbs_required(demand, rate).unwrap();
            // n RRBs must carry the demand; n−1 must not.
            prop_assert!(n.as_f64() * rate.get() >= demand.get() - 1e-6);
            if n.get() > 0 {
                prop_assert!((n.as_f64() - 1.0) * rate.get() < demand.get());
            }
        }
    }

    // ---- batched kernel ------------------------------------------------

    /// Builds the evaluator variant `model_sel`/`shadowed` selects, so the
    /// property tests sweep every path-loss model with and without
    /// shadowing.
    fn eval_variant(model_sel: u8, shadowed: bool) -> LinkEvaluator {
        let mut cfg = RadioConfig::paper_defaults();
        cfg.path_loss = match model_sel % 3 {
            0 => crate::PathLossModel::Icdcs2019,
            1 => crate::PathLossModel::LogDistance {
                ref_loss: Db::new(60.0),
                ref_distance: Meters::new(10.0),
                exponent: 3.2,
            },
            _ => crate::PathLossModel::FreeSpace {
                frequency: dmra_types::Hertz::from_mhz(2000.0),
            },
        };
        if shadowed {
            cfg.shadowing = crate::Shadowing::LogNormal {
                std_dev: Db::new(8.0),
                seed: 7,
            };
        }
        // Pin the mode explicitly: `batch_mode_default_round_trips`
        // briefly flips the process-wide default on a parallel thread.
        LinkEvaluator::new(cfg).with_batch_mode(BatchMode::Exact)
    }

    /// Pushes the candidate lanes and returns, per lane, the interference
    /// power the *scalar* chain would hand `evaluate_at_distance` — the
    /// load-proportional model of the candidate scan.
    fn fill_batch(
        e: &LinkEvaluator,
        tx: Dbm,
        ue: Point,
        candidates: &[(Point, f64)],
        factor: f64,
        batch: &mut LinkBatch,
    ) -> Vec<f64> {
        batch.clear();
        let mut scalar_interference = Vec::with_capacity(candidates.len());
        for (j, &(bs, total_mult)) in candidates.iter().enumerate() {
            let own_rx = e.rx_power_mw(tx, ue, bs);
            let total_rx = own_rx * total_mult;
            batch.push(j as u32, bs, ue.distance(bs), total_rx);
            scalar_interference.push(if factor > 0.0 {
                factor * (total_rx - own_rx).max(0.0)
            } else {
                0.0
            });
        }
        scalar_interference
    }

    #[test]
    fn batch_on_empty_slice_is_a_noop() {
        let e = eval();
        let mut batch = LinkBatch::new();
        e.evaluate_batch(Dbm::new(10.0), Point::new(5.0, 5.0), 0.0, &mut batch);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
    }

    #[test]
    fn batch_mode_default_round_trips() {
        assert_eq!(batch_mode_default(), BatchMode::Exact);
        set_batch_mode_default(BatchMode::Approx);
        assert_eq!(batch_mode_default(), BatchMode::Approx);
        assert_eq!(
            LinkEvaluator::new(RadioConfig::paper_defaults()).batch_mode(),
            BatchMode::Approx
        );
        set_batch_mode_default(BatchMode::Exact);
        assert_eq!(batch_mode_default(), BatchMode::Exact);
        let e = eval().with_batch_mode(BatchMode::Approx);
        assert_eq!(e.batch_mode(), BatchMode::Approx);
    }

    #[test]
    fn batch_exact_matches_scalar_below_min_distance_clamp() {
        // The d→0 clamp: lanes closer than MIN_DISTANCE_M evaluate at the
        // 1 m floor in both chains, bit for bit.
        let ue = Point::new(100.0, 100.0);
        let tx = Dbm::new(10.0);
        for shadowed in [false, true] {
            for model in 0..3u8 {
                let e = eval_variant(model, shadowed);
                let candidates: Vec<(Point, f64)> = [0.0, 0.1, 0.5, 0.999, 1.0, 1.5]
                    .iter()
                    .map(|&dx| (Point::new(100.0 + dx, 100.0), 1.0))
                    .collect();
                let mut batch = LinkBatch::new();
                let interference = fill_batch(&e, tx, ue, &candidates, 0.0, &mut batch);
                e.evaluate_batch(tx, ue, 0.0, &mut batch);
                for (j, &(bs, _)) in candidates.iter().enumerate() {
                    let scalar =
                        e.evaluate_at_distance(tx, ue, bs, ue.distance(bs), interference[j]);
                    assert_eq!(batch.metrics(j), scalar, "lane {j}");
                }
            }
        }
    }

    proptest! {
        /// Tentpole invariant: under `BatchMode::Exact` every lane of the
        /// batched kernel is **bit-identical** to the scalar
        /// `evaluate_at_distance` chain — across path-loss models,
        /// shadowing on/off, and zero/positive interference factors.
        #[test]
        fn prop_batch_exact_is_bit_identical_to_scalar(
            offsets in prop::collection::vec((-1500.0f64..1500.0, -1500.0f64..1500.0), 1..40),
            ue_x in 0.0f64..3000.0,
            ue_y in 0.0f64..3000.0,
            model_sel in 0u8..3,
            shadowed in prop::bool::ANY,
            with_interference in prop::bool::ANY,
            factor in 0.01f64..1.0,
            total_mult in 1.0f64..50.0,
        ) {
            let e = eval_variant(model_sel, shadowed);
            let tx = Dbm::new(10.0);
            let ue = Point::new(ue_x, ue_y);
            let factor = if with_interference { factor } else { 0.0 };
            let candidates: Vec<(Point, f64)> = offsets
                .iter()
                .map(|&(dx, dy)| (Point::new(ue_x + dx, ue_y + dy), total_mult))
                .collect();
            let mut batch = LinkBatch::new();
            let interference = fill_batch(&e, tx, ue, &candidates, factor, &mut batch);
            e.evaluate_batch(tx, ue, factor, &mut batch);
            prop_assert_eq!(batch.len(), candidates.len());
            for (j, &(bs, _)) in candidates.iter().enumerate() {
                let scalar = e.evaluate_at_distance(tx, ue, bs, ue.distance(bs), interference[j]);
                let batched = batch.metrics(j);
                // Bitwise, not approximate: `LinkMetrics` equality is f64
                // equality in every field, and the fields must match to
                // the last bit for the cached/batched paths to be
                // indistinguishable from the scalar build.
                prop_assert_eq!(batched, scalar, "lane {}", j);
                prop_assert_eq!(batch.tag(j), j as u32);
            }
        }

        /// The opt-in approximate lane agrees with the scalar chain to
        /// tight relative error (the polynomial helpers are good to
        /// ≲1e−12; 1e−9 leaves slack for cancellation in the SINR chain).
        #[test]
        fn prop_batch_approx_is_close_to_scalar(
            offsets in prop::collection::vec((-1500.0f64..1500.0, -1500.0f64..1500.0), 1..40),
            model_sel in 0u8..3,
            shadowed in prop::bool::ANY,
            factor in 0.0f64..1.0,
        ) {
            let e = eval_variant(model_sel, shadowed).with_batch_mode(BatchMode::Approx);
            let tx = Dbm::new(10.0);
            let ue = Point::new(1500.0, 1500.0);
            let candidates: Vec<(Point, f64)> = offsets
                .iter()
                .map(|&(dx, dy)| (Point::new(1500.0 + dx, 1500.0 + dy), 8.0))
                .collect();
            let mut batch = LinkBatch::new();
            let interference = fill_batch(&e, tx, ue, &candidates, factor, &mut batch);
            e.evaluate_batch(tx, ue, factor, &mut batch);
            for (j, &(bs, _)) in candidates.iter().enumerate() {
                let scalar = e.evaluate_at_distance(tx, ue, bs, ue.distance(bs), interference[j]);
                let batched = batch.metrics(j);
                let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
                prop_assert!(rel(batched.attenuation.get(), scalar.attenuation.get()) < 1e-9);
                prop_assert!(rel(batched.sinr_linear, scalar.sinr_linear) < 1e-9);
                prop_assert!(
                    rel(batched.per_rrb_rate.get(), scalar.per_rrb_rate.get()) < 1e-9,
                    "rate {} vs {}", batched.per_rrb_rate.get(), scalar.per_rrb_rate.get()
                );
            }
        }
    }
}
