//! Radio model configuration.

use crate::pathloss::PathLossModel;
use crate::shadowing::Shadowing;
use dmra_types::{Dbm, Hertz, RrbCount};
use serde::{Deserialize, Serialize};

/// How the noise floor is specified.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// A noise power spectral density in dBm/Hz, integrated over one RRB.
    ///
    /// Physically principled (thermal noise is ≈ −174 dBm/Hz), but NOT the
    /// paper's setting: integrating −170 dBm/Hz over 180 kHz gives a
    /// −117.4 dBm floor whose steep SINR-vs-distance gradient makes RRB
    /// demand vary ~10× across the cell and flips the algorithm ordering
    /// of the figures. Kept as an ablation; see DESIGN.md §2.
    PsdDbmPerHz(f64),
    /// A total in-band noise power per RRB, in dBm — the paper's literal
    /// "the noise in the uplink channel is −170 dBm". This is the default:
    /// it reproduces the paper's saturation scale (≈ 850 edge-served UEs
    /// across 25 BSs) and its algorithm ordering.
    TotalPerRrb(Dbm),
}

impl NoiseModel {
    /// Noise power per RRB in linear milliwatts.
    #[must_use]
    pub fn power_per_rrb_mw(&self, rrb_bandwidth: Hertz) -> f64 {
        match *self {
            NoiseModel::PsdDbmPerHz(psd) => {
                Dbm::new(psd + 10.0 * rrb_bandwidth.get().log10()).to_milliwatts()
            }
            NoiseModel::TotalPerRrb(p) => p.to_milliwatts(),
        }
    }
}

/// How other transmissions degrade a link.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InterferenceModel {
    /// SINR reduces to SNR: only the noise floor. OFDMA keeps in-cell users
    /// orthogonal, and the regular-grid reuse keeps cross-cell interference
    /// second-order, so this is the default (and what the figures use).
    #[default]
    NoiseOnly,
    /// Adds `factor ×` the aggregate received power of *other* UEs at the
    /// receiving BS — a pessimistic full-buffer cross-cell term. The
    /// aggregate is computed by the instance builder and passed to
    /// [`LinkEvaluator::evaluate_with_interference`].
    ///
    /// [`LinkEvaluator::evaluate_with_interference`]:
    /// crate::LinkEvaluator::evaluate_with_interference
    LoadProportional {
        /// Fraction of other-UE received power counted as interference
        /// (an activity/overlap factor in `[0, 1]`).
        factor: f64,
    },
}

/// Full configuration of the uplink radio model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// `W_sub`: bandwidth of one RRB (paper: 180 kHz).
    pub rrb_bandwidth: Hertz,
    /// Distance → attenuation model (paper: Eq. (18)).
    pub path_loss: PathLossModel,
    /// Shadow fading (paper: off).
    pub shadowing: Shadowing,
    /// Noise floor specification (paper: −170 dBm, read literally as the
    /// total per-RRB noise power; see [`NoiseModel`]).
    pub noise: NoiseModel,
    /// Cross-link interference model (paper: not modeled ⇒ noise-only).
    pub interference: InterferenceModel,
}

impl RadioConfig {
    /// The paper's simulation constants (Section VI-A).
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            rrb_bandwidth: Hertz::from_khz(180.0),
            path_loss: PathLossModel::Icdcs2019,
            shadowing: Shadowing::Off,
            noise: NoiseModel::TotalPerRrb(Dbm::new(-170.0)),
            interference: InterferenceModel::NoiseOnly,
        }
    }

    /// Noise power per RRB in linear milliwatts.
    #[must_use]
    pub fn noise_power_per_rrb_mw(&self) -> f64 {
        self.noise.power_per_rrb_mw(self.rrb_bandwidth)
    }

    /// `N_i`: how many RRBs fit in an uplink of bandwidth `uplink` — the
    /// paper's 10 MHz / 180 kHz ⇒ 55 RRBs.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmra_radio::RadioConfig;
    /// # use dmra_types::Hertz;
    /// let cfg = RadioConfig::paper_defaults();
    /// assert_eq!(cfg.max_rrbs(Hertz::from_mhz(10.0)).get(), 55);
    /// ```
    #[must_use]
    pub fn max_rrbs(&self, uplink: Hertz) -> RrbCount {
        RrbCount::new((uplink.get() / self.rrb_bandwidth.get()).floor() as u32)
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_noise_floor_per_rrb() {
        let cfg = RadioConfig::paper_defaults();
        let mw = cfg.noise_power_per_rrb_mw();
        let dbm = 10.0 * mw.log10();
        // The paper's literal setting: −170 dBm total per RRB.
        assert!((dbm - (-170.0)).abs() < 1e-9, "got {dbm} dBm");
    }

    #[test]
    fn psd_reading_integrates_over_rrb() {
        let n = NoiseModel::PsdDbmPerHz(-170.0);
        let mw = n.power_per_rrb_mw(Hertz::from_khz(180.0));
        let dbm = 10.0 * mw.log10();
        // −170 dBm/Hz over 180 kHz ≈ −117.45 dBm.
        assert!((dbm - (-117.45)).abs() < 0.05, "got {dbm} dBm");
    }

    #[test]
    fn total_noise_model_ignores_bandwidth() {
        let n = NoiseModel::TotalPerRrb(Dbm::new(-100.0));
        let a = n.power_per_rrb_mw(Hertz::from_khz(180.0));
        let b = n.power_per_rrb_mw(Hertz::from_mhz(10.0));
        assert_eq!(a, b);
        assert!((10.0 * a.log10() - (-100.0)).abs() < 1e-9);
    }

    #[test]
    fn max_rrbs_floors() {
        let cfg = RadioConfig::paper_defaults();
        assert_eq!(cfg.max_rrbs(Hertz::from_mhz(10.0)).get(), 55);
        assert_eq!(cfg.max_rrbs(Hertz::from_khz(179.0)).get(), 0);
        assert_eq!(cfg.max_rrbs(Hertz::from_khz(360.0)).get(), 2);
    }

    #[test]
    fn default_matches_paper() {
        assert_eq!(RadioConfig::default(), RadioConfig::paper_defaults());
    }
}
