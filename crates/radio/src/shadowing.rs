//! Deterministic log-normal shadowing.
//!
//! Shadow fading adds a zero-mean Gaussian (in dB) to the path loss. The
//! paper's evaluation does not enable shadowing, but real 3GPP calibration
//! does, so we support it as an extension (an ablation bench measures its
//! effect on the figures). To keep link evaluation order-independent and
//! reproducible, the Gaussian is *derived from the link itself*: the draw is
//! a pure function of `(seed, endpoint coordinates)`.

use dmra_geo::rng::splitmix64;
use dmra_types::{Db, Point};
use serde::{Deserialize, Serialize};

/// Shadow-fading configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Shadowing {
    /// No shadowing — the paper's setting.
    #[default]
    Off,
    /// Log-normal shadowing with the given standard deviation in dB.
    LogNormal {
        /// Standard deviation of the dB-domain Gaussian (3GPP uses 4–10 dB).
        std_dev: Db,
        /// Seed making the fading field reproducible.
        seed: u64,
    },
}

impl Shadowing {
    /// Returns the shadowing term for the link between `a` and `b`, in dB.
    ///
    /// The value is symmetric in its endpoints and deterministic: the same
    /// link always fades identically within one configuration.
    #[must_use]
    pub fn sample(&self, a: Point, b: Point) -> Db {
        match *self {
            Shadowing::Off => Db::new(0.0),
            Shadowing::LogNormal { std_dev, seed } => {
                let h = link_hash(seed, a, b);
                Db::new(gaussian_from_bits(h) * std_dev.get())
            }
        }
    }
}

/// Hashes the (unordered) link endpoints with the seed.
fn link_hash(seed: u64, a: Point, b: Point) -> u64 {
    // Order-independence: fold the two endpoint hashes with XOR.
    let ha = point_hash(seed, a);
    let hb = point_hash(seed, b);
    splitmix64(ha ^ hb)
}

fn point_hash(seed: u64, p: Point) -> u64 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ p.x.to_bits());
    splitmix64(h ^ p.y.to_bits())
}

/// Converts 64 random bits to a standard-normal draw (Box–Muller on the two
/// 32-bit halves).
fn gaussian_from_bits(bits: u64) -> f64 {
    let hi = (bits >> 32) as u32;
    let lo = bits as u32;
    // Map to (0, 1]: add 1 so u1 is never zero.
    let u1 = (f64::from(hi) + 1.0) / (f64::from(u32::MAX) + 1.0);
    let u2 = f64::from(lo) / (f64::from(u32::MAX) + 1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Point = Point::new(10.0, 20.0);
    const B: Point = Point::new(300.0, 400.0);

    #[test]
    fn off_is_zero() {
        assert_eq!(Shadowing::Off.sample(A, B), Db::new(0.0));
    }

    #[test]
    fn sample_is_deterministic() {
        let s = Shadowing::LogNormal {
            std_dev: Db::new(8.0),
            seed: 7,
        };
        assert_eq!(s.sample(A, B), s.sample(A, B));
    }

    #[test]
    fn sample_is_symmetric_in_endpoints() {
        let s = Shadowing::LogNormal {
            std_dev: Db::new(8.0),
            seed: 7,
        };
        assert_eq!(s.sample(A, B), s.sample(B, A));
    }

    #[test]
    fn different_links_fade_differently() {
        let s = Shadowing::LogNormal {
            std_dev: Db::new(8.0),
            seed: 7,
        };
        let other = Point::new(301.0, 400.0);
        assert_ne!(s.sample(A, B), s.sample(A, other));
    }

    #[test]
    fn different_seeds_fade_differently() {
        let s1 = Shadowing::LogNormal {
            std_dev: Db::new(8.0),
            seed: 7,
        };
        let s2 = Shadowing::LogNormal {
            std_dev: Db::new(8.0),
            seed: 8,
        };
        assert_ne!(s1.sample(A, B), s2.sample(A, B));
    }

    #[test]
    fn empirical_moments_are_plausible() {
        let s = Shadowing::LogNormal {
            std_dev: Db::new(8.0),
            seed: 3,
        };
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let p = Point::new(f64::from(i), 0.0);
                s.sample(p, B).get()
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.3, "mean {mean} should be near 0");
        assert!(
            (var.sqrt() - 8.0).abs() < 0.3,
            "std {} should be near 8",
            var.sqrt()
        );
    }
}
