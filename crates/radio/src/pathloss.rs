//! Distance-dependent path-loss models.

use dmra_types::{Db, Hertz, Meters};
use serde::{Deserialize, Serialize};

/// Distances below this are clamped before evaluating any model; the
/// logarithmic formulas diverge to −∞ at zero distance, and sub-meter
/// UE–BS separations are outside every model's validity range anyway.
const MIN_DISTANCE_M: f64 = 1.0;

/// A distance → attenuation model for the uplink channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PathLossModel {
    /// The paper's Eq. (18): `PL(d) = 140.7 + 36.7·log10(d_km)` dB — the
    /// 3GPP TR 36.814 NLOS pico/micro urban model.
    Icdcs2019,
    /// Generic log-distance model:
    /// `PL(d) = ref_loss + 10·n·log10(d / ref_distance)` dB.
    LogDistance {
        /// Loss at the reference distance, in dB.
        ref_loss: Db,
        /// Reference distance, in meters (must be positive).
        ref_distance: Meters,
        /// Path-loss exponent `n` (2 = free space, 3–4 = urban).
        exponent: f64,
    },
    /// Free-space path loss at the given carrier frequency:
    /// `PL(d) = 20·log10(d_m) + 20·log10(f_Hz) − 147.55` dB.
    FreeSpace {
        /// Carrier frequency.
        frequency: Hertz,
    },
}

impl PathLossModel {
    /// Evaluates the attenuation at distance `d`.
    ///
    /// Distances under one meter are clamped to one meter; see the module
    /// constant. The result is always finite for finite inputs.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmra_radio::PathLossModel;
    /// # use dmra_types::Meters;
    /// // The paper's model at 300 m: 140.7 + 36.7·log10(0.3) ≈ 121.5 dB.
    /// let pl = PathLossModel::Icdcs2019.loss(Meters::new(300.0));
    /// assert!((pl.get() - 121.512).abs() < 0.01);
    /// ```
    #[must_use]
    pub fn loss(&self, d: Meters) -> Db {
        let d_m = d.get().max(MIN_DISTANCE_M);
        let db = match *self {
            PathLossModel::Icdcs2019 => 140.7 + 36.7 * (d_m / 1000.0).log10(),
            PathLossModel::LogDistance {
                ref_loss,
                ref_distance,
                exponent,
            } => {
                let d0 = ref_distance.get().max(MIN_DISTANCE_M);
                ref_loss.get() + 10.0 * exponent * (d_m / d0).log10()
            }
            PathLossModel::FreeSpace { frequency } => {
                20.0 * d_m.log10() + 20.0 * frequency.get().log10() - 147.55
            }
        };
        Db::new(db)
    }
}

impl Default for PathLossModel {
    /// The paper's model.
    fn default() -> Self {
        PathLossModel::Icdcs2019
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_model_reference_values() {
        // At 1 km the log term vanishes.
        let pl = PathLossModel::Icdcs2019.loss(Meters::new(1000.0));
        assert!((pl.get() - 140.7).abs() < 1e-9);
        // At 100 m: 140.7 − 36.7 = 104.0 dB.
        let pl = PathLossModel::Icdcs2019.loss(Meters::new(100.0));
        assert!((pl.get() - 104.0).abs() < 1e-9);
    }

    #[test]
    fn paper_model_is_monotone_in_distance() {
        let m = PathLossModel::Icdcs2019;
        let mut prev = m.loss(Meters::new(10.0));
        for d in [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0] {
            let cur = m.loss(Meters::new(d));
            assert!(cur > prev, "loss must grow with distance");
            prev = cur;
        }
    }

    #[test]
    fn zero_distance_is_clamped_not_infinite() {
        let pl = PathLossModel::Icdcs2019.loss(Meters::new(0.0));
        assert!(pl.get().is_finite());
        assert_eq!(pl, PathLossModel::Icdcs2019.loss(Meters::new(1.0)));
    }

    #[test]
    fn log_distance_matches_hand_computation() {
        let m = PathLossModel::LogDistance {
            ref_loss: Db::new(60.0),
            ref_distance: Meters::new(10.0),
            exponent: 3.0,
        };
        // d = 100 m: 60 + 30·log10(10) = 90 dB.
        assert!((m.loss(Meters::new(100.0)).get() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn free_space_at_1ghz_1m() {
        let m = PathLossModel::FreeSpace {
            frequency: Hertz::from_mhz(1000.0),
        };
        // FSPL(1 m, 1 GHz) = 20·log10(1e9) − 147.55 ≈ 32.45 dB.
        assert!((m.loss(Meters::new(1.0)).get() - 32.45).abs() < 0.01);
    }

    #[test]
    fn default_is_paper_model() {
        assert_eq!(PathLossModel::default(), PathLossModel::Icdcs2019);
    }

    proptest! {
        #[test]
        fn prop_loss_finite_and_monotone(d1 in 1.0f64..5000.0, d2 in 1.0f64..5000.0) {
            let m = PathLossModel::Icdcs2019;
            let (l1, l2) = (m.loss(Meters::new(d1)), m.loss(Meters::new(d2)));
            prop_assert!(l1.get().is_finite() && l2.get().is_finite());
            if d1 < d2 {
                prop_assert!(l1 <= l2);
            }
        }
    }
}
