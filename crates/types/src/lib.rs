//! Typed identifiers, physical units and entity specifications shared by
//! every crate of the DMRA reproduction.
//!
//! The crate is deliberately free of algorithms: it pins down the vocabulary
//! of the system model in Section III of the paper — service providers
//! ([`SpId`]), base stations ([`BsId`]), user equipments ([`UeId`]) and
//! services ([`ServiceId`]) — together with the physical quantities the
//! model manipulates (distances, bandwidths, powers, prices, computing and
//! radio resource units).
//!
//! # Examples
//!
//! ```
//! use dmra_types::{BsId, Cru, Dbm, Meters, SpId};
//!
//! let sp = SpId::new(0);
//! let bs = BsId::new(3);
//! let budget = Cru::new(120);
//! let demand = Cru::new(4);
//! assert!(demand <= budget);
//! assert_eq!((budget - demand).get(), 116);
//! assert_eq!(format!("{sp}/{bs}"), "sp0/bs3");
//! let p = Dbm::new(10.0);
//! assert!((p.to_milliwatts() - 10.0).abs() < 1e-9);
//! let d = Meters::new(300.0);
//! assert!((d.to_kilometers() - 0.3).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entity;
mod error;
mod geom;
mod id;
mod units;

pub use entity::{BsSpec, ServiceCatalog, SpSpec, UeSpec};
pub use error::{Error, Result};
pub use geom::{Point, Rect};
pub use id::{BsId, ServiceId, SpId, UeId};
pub use units::{BitsPerSec, Cru, Db, Dbm, Hertz, Meters, Money, RrbCount};
