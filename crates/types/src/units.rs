//! Physical-unit newtypes.
//!
//! The radio model mixes decibel quantities (path loss, SINR), linear powers,
//! bandwidths, data rates and two resource-counting units: the paper's
//! *Computing Resource Unit* ([`Cru`]) and OFDMA *Radio Resource Block* count
//! ([`RrbCount`]). Monetary amounts use [`Money`]. The newtypes keep the
//! dB-vs-linear and meters-vs-kilometers conversions explicit, which is where
//! reproduction bugs in this kind of simulation usually hide.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! float_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value in this unit.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in this unit.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor ±∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

float_unit!(
    /// A distance in meters (`d_{i,u}` in the paper is handled in meters;
    /// the path-loss model of Eq. (18) consumes kilometers via
    /// [`Meters::to_kilometers`]).
    Meters,
    "m"
);
float_unit!(
    /// A bandwidth or frequency in hertz (`W_sub`, `W_i`).
    Hertz,
    "Hz"
);
float_unit!(
    /// A data rate in bits per second (`w_u`, `e_{u,i}`).
    BitsPerSec,
    "bit/s"
);
float_unit!(
    /// A power level in dBm (UE transmit power, noise floor).
    Dbm,
    "dBm"
);
float_unit!(
    /// A dimensionless ratio in decibels (path loss, SINR in dB).
    Db,
    "dB"
);
float_unit!(
    /// A monetary amount in abstract currency units (prices `b`, `m_k`,
    /// `m_k^o`, `p_{i,u}` and the SP utilities `W_k`).
    Money,
    "$"
);

impl Meters {
    /// Converts to kilometers (the unit the paper's path-loss formula uses).
    #[must_use]
    pub fn to_kilometers(self) -> f64 {
        self.0 / 1000.0
    }
}

impl Hertz {
    /// Constructs a bandwidth expressed in kilohertz.
    #[must_use]
    pub fn from_khz(khz: f64) -> Self {
        Self(khz * 1e3)
    }

    /// Constructs a bandwidth expressed in megahertz.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }
}

impl BitsPerSec {
    /// Constructs a rate expressed in megabits per second.
    #[must_use]
    pub fn from_mbps(mbps: f64) -> Self {
        Self(mbps * 1e6)
    }

    /// Converts to megabits per second.
    #[must_use]
    pub fn to_mbps(self) -> f64 {
        self.0 / 1e6
    }
}

impl Dbm {
    /// Converts this absolute power level to linear milliwatts.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmra_types::Dbm;
    /// assert!((Dbm::new(0.0).to_milliwatts() - 1.0).abs() < 1e-12);
    /// assert!((Dbm::new(30.0).to_milliwatts() - 1000.0).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Constructs a power level from linear milliwatts.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `mw` is not strictly positive (zero or
    /// negative powers have no dBm representation).
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        debug_assert!(mw > 0.0, "power must be positive to express in dBm");
        Self(10.0 * mw.log10())
    }

    /// Attenuates this power by `loss` decibels.
    #[must_use]
    pub fn attenuate(self, loss: Db) -> Self {
        Self(self.0 - loss.get())
    }
}

impl Db {
    /// Converts this ratio to linear scale.
    #[must_use]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Constructs a decibel ratio from a linear value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `linear` is not strictly positive.
    #[must_use]
    pub fn from_linear(linear: f64) -> Self {
        debug_assert!(linear > 0.0, "ratio must be positive to express in dB");
        Self(10.0 * linear.log10())
    }
}

impl Neg for Db {
    type Output = Self;
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl Neg for Money {
    type Output = Self;
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

macro_rules! count_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// The zero count.
            pub const ZERO: Self = Self(0);

            /// Wraps a raw count.
            #[must_use]
            pub const fn new(count: u32) -> Self {
                Self(count)
            }

            /// Returns the raw count.
            #[must_use]
            pub const fn get(self) -> u32 {
                self.0
            }

            /// Returns `true` if the count is zero.
            #[must_use]
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Subtracts, saturating at zero instead of wrapping.
            #[must_use]
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Subtracts, returning `None` when `rhs` exceeds `self`.
            #[must_use]
            pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
                match self.0.checked_sub(rhs.0) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// Returns the raw count widened to `f64` (used by preference
            /// formulas that mix resource counts with prices).
            #[must_use]
            pub const fn as_f64(self) -> f64 {
                self.0 as f64
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            /// # Panics
            ///
            /// Panics on underflow, exactly like `u32` subtraction.
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<u32> for $name {
            fn from(count: u32) -> Self {
                Self(count)
            }
        }

        impl From<$name> for u32 {
            fn from(count: $name) -> u32 {
                count.0
            }
        }
    };
}

count_unit!(
    /// A number of Computing Resource Units (CRUs).
    ///
    /// The paper's `c_{i,j}` (per-service budget of BS `i`) and `c_j^u`
    /// (demand of UE `u`) are both CRU counts.
    Cru,
    "CRU"
);
count_unit!(
    /// A number of OFDMA Radio Resource Blocks (RRBs).
    ///
    /// The paper's `N_i` (uplink budget of BS `i`) and `n_{u,i}` (demand of
    /// UE `u` at BS `i`, Eq. (3)) are both RRB counts.
    RrbCount,
    "RRB"
);

impl Mul<Cru> for Money {
    type Output = Money;
    /// Scales a per-CRU price by a CRU count, as in Eqs. (6)–(8).
    fn mul(self, rhs: Cru) -> Money {
        Money::new(self.0 * rhs.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn meters_to_kilometers() {
        assert!((Meters::new(1500.0).to_kilometers() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn hertz_constructors() {
        assert_eq!(Hertz::from_khz(180.0).get(), 180_000.0);
        assert_eq!(Hertz::from_mhz(10.0).get(), 10_000_000.0);
    }

    #[test]
    fn bits_per_sec_roundtrip_mbps() {
        let r = BitsPerSec::from_mbps(4.5);
        assert!((r.to_mbps() - 4.5).abs() < 1e-12);
        assert_eq!(r.get(), 4_500_000.0);
    }

    #[test]
    fn dbm_linear_conversions() {
        assert!((Dbm::new(10.0).to_milliwatts() - 10.0).abs() < 1e-9);
        let back = Dbm::from_milliwatts(10.0);
        assert!((back.get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_attenuation_subtracts_loss() {
        let rx = Dbm::new(10.0).attenuate(Db::new(121.5));
        assert!((rx.get() - (-111.5)).abs() < 1e-9);
    }

    #[test]
    fn db_linear_roundtrip() {
        let snr = Db::new(6.0);
        assert!((snr.to_linear() - 3.981_071_705_534_972).abs() < 1e-9);
        assert!((Db::from_linear(snr.to_linear()).get() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn counts_saturating_and_checked_sub() {
        let a = Cru::new(3);
        let b = Cru::new(5);
        assert_eq!(a.saturating_sub(b), Cru::ZERO);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(Cru::new(2)));
    }

    #[test]
    fn counts_sum_and_arithmetic() {
        let total: RrbCount = (1..=4).map(RrbCount::new).sum();
        assert_eq!(total, RrbCount::new(10));
        let mut n = RrbCount::new(7);
        n -= RrbCount::new(2);
        n += RrbCount::new(1);
        assert_eq!(n.get(), 6);
    }

    #[test]
    fn money_scales_by_cru() {
        let paid = Money::new(2.5) * Cru::new(4);
        assert!((paid.get() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn money_sums_and_negates() {
        let total: Money = [1.0, 2.0, 3.5].iter().map(|&v| Money::new(v)).sum();
        assert!((total.get() - 6.5).abs() < 1e-12);
        assert!(((-total).get() + 6.5).abs() < 1e-12);
    }

    #[test]
    fn display_carries_unit_suffix() {
        assert_eq!(Meters::new(300.0).to_string(), "300m");
        assert_eq!(Cru::new(5).to_string(), "5 CRU");
        assert_eq!(RrbCount::new(2).to_string(), "2 RRB");
    }

    proptest! {
        #[test]
        fn prop_dbm_milliwatt_roundtrip(p in -150.0f64..60.0) {
            let mw = Dbm::new(p).to_milliwatts();
            prop_assert!(mw > 0.0);
            let back = Dbm::from_milliwatts(mw).get();
            prop_assert!((back - p).abs() < 1e-9);
        }

        #[test]
        fn prop_db_monotone_in_linear(a in 1e-6f64..1e6, b in 1e-6f64..1e6) {
            let (da, db) = (Db::from_linear(a), Db::from_linear(b));
            prop_assert_eq!(a < b, da < db);
        }

        #[test]
        fn prop_count_sub_add_inverse(a in 0u32..1_000_000, b in 0u32..1_000_000) {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let diff = Cru::new(hi) - Cru::new(lo);
            prop_assert_eq!(diff + Cru::new(lo), Cru::new(hi));
        }
    }
}
