//! Typed identifiers for the four entity classes of the system model.
//!
//! The paper indexes SPs with `k ∈ ς`, BSs with `i ∈ B`, UEs with `u ∈ U`
//! and services with `j ∈ S`. Using distinct newtypes prevents the classic
//! "passed a UE index where a BS index was expected" bug across the
//! workspace, at zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its raw index.
            ///
            /// # Examples
            ///
            /// ```
            /// # use dmra_types::*;
            #[doc = concat!("let id = ", stringify!($name), "::new(7);")]
            /// assert_eq!(id.index(), 7);
            /// ```
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index, usable for dense `Vec` indexing.
            #[must_use]
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Returns the raw index widened to `usize` for slice indexing.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                Self(index)
            }
        }
    };
}

define_id!(
    /// Identifier of a service provider (`k ∈ ς` in the paper).
    SpId,
    "sp"
);
define_id!(
    /// Identifier of a base station / MEC server (`i ∈ B` in the paper).
    ///
    /// The paper uses "BS" and "MEC server" interchangeably; so do we.
    BsId,
    "bs"
);
define_id!(
    /// Identifier of a user equipment (`u ∈ U` in the paper).
    UeId,
    "ue"
);
define_id!(
    /// Identifier of a service type (`j ∈ S` in the paper).
    ServiceId,
    "svc"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_entity_prefix() {
        assert_eq!(SpId::new(2).to_string(), "sp2");
        assert_eq!(BsId::new(0).to_string(), "bs0");
        assert_eq!(UeId::new(41).to_string(), "ue41");
        assert_eq!(ServiceId::new(5).to_string(), "svc5");
    }

    #[test]
    fn ids_roundtrip_through_u32() {
        let id = BsId::from(9u32);
        assert_eq!(u32::from(id), 9);
        assert_eq!(id.as_usize(), 9);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(UeId::new(1) < UeId::new(2));
        assert_eq!(UeId::new(3), UeId::new(3));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<UeId> = (0..10).map(UeId::new).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn default_is_index_zero() {
        assert_eq!(SpId::default(), SpId::new(0));
    }
}
