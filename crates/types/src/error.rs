//! The workspace-wide error type.

use crate::id::{BsId, ServiceId, SpId, UeId};
use std::fmt;

/// A convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while building or solving a DMRA problem instance.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration field failed validation (message explains which).
    InvalidConfig(String),
    /// An entity references an SP that does not exist.
    UnknownSp(SpId),
    /// A reference to a BS that does not exist in the instance.
    UnknownBs(BsId),
    /// A reference to a UE that does not exist in the instance.
    UnknownUe(UeId),
    /// A reference to a service outside the catalog.
    UnknownService(ServiceId),
    /// The profitability constraint (16) of the paper, `m_k > p_{i,u} +
    /// m_k^o`, is violated for the given SP — the pricing constants would
    /// make some edge assignment run at a loss.
    UnprofitablePricing {
        /// The SP whose margin is insufficient.
        sp: SpId,
        /// Human-readable detail (worst-case price vs. margin).
        detail: String,
    },
    /// A matching run exceeded its iteration bound without quiescing; this
    /// indicates a bug, as the paper's algorithm provably terminates. The
    /// instance dimensions make the report actionable without a rerun.
    NonTermination {
        /// The configured iteration bound that was exhausted.
        bound: usize,
        /// Number of UEs in the instance that failed to quiesce.
        n_ues: usize,
        /// Number of BSs in the instance that failed to quiesce.
        n_bss: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::UnknownSp(id) => write!(f, "unknown service provider {id}"),
            Error::UnknownBs(id) => write!(f, "unknown base station {id}"),
            Error::UnknownUe(id) => write!(f, "unknown user equipment {id}"),
            Error::UnknownService(id) => write!(f, "unknown service {id}"),
            Error::UnprofitablePricing { sp, detail } => {
                write!(f, "pricing violates constraint (16) for {sp}: {detail}")
            }
            Error::NonTermination {
                bound,
                n_ues,
                n_bss,
            } => {
                write!(
                    f,
                    "matching did not quiesce within {bound} iterations \
                     (instance: {n_ues} UEs x {n_bss} BSs; the algorithm \
                     provably terminates in at most |U| + 1 iterations)"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = Error::UnknownBs(BsId::new(4));
        assert_eq!(e.to_string(), "unknown base station bs4");
        let e = Error::InvalidConfig("n_ues must be positive".into());
        assert!(e.to_string().starts_with("invalid configuration:"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<Error>();
    }

    #[test]
    fn nontermination_reports_bound_and_dimensions() {
        let e = Error::NonTermination {
            bound: 10_000,
            n_ues: 600,
            n_bss: 25,
        };
        let msg = e.to_string();
        assert!(msg.contains("10000"), "bound missing: {msg}");
        assert!(msg.contains("600 UEs"), "UE count missing: {msg}");
        assert!(msg.contains("25 BSs"), "BS count missing: {msg}");
    }
}
