//! Entity specifications: the static description of SPs, BSs and UEs.
//!
//! These are passive, fully-public data structures (the "problem input").
//! Mutable allocation state (remaining CRUs / RRBs, assignments) lives in
//! `dmra-core`, never here.

use crate::geom::Point;
use crate::id::{BsId, ServiceId, SpId, UeId};
use crate::units::{BitsPerSec, Cru, Dbm, Hertz, Money, RrbCount};
use serde::{Deserialize, Serialize};

/// The global catalog of service types `S`.
///
/// Services are identified by dense indices `0..len`, so the catalog only
/// needs to know how many there are (the paper uses six).
///
/// # Examples
///
/// ```
/// # use dmra_types::ServiceCatalog;
/// let catalog = ServiceCatalog::new(6);
/// assert_eq!(catalog.len(), 6);
/// assert_eq!(catalog.iter().count(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceCatalog {
    len: u32,
}

impl ServiceCatalog {
    /// Creates a catalog with `len` service types.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero: the model requires at least one service.
    #[must_use]
    pub fn new(len: u32) -> Self {
        assert!(len > 0, "service catalog must contain at least one service");
        Self { len }
    }

    /// Number of service types `|S|`.
    #[must_use]
    pub const fn len(self) -> u32 {
        self.len
    }

    /// Always `false`; kept for API completeness alongside [`len`].
    ///
    /// [`len`]: ServiceCatalog::len
    #[must_use]
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Iterates over all service identifiers.
    pub fn iter(self) -> impl Iterator<Item = ServiceId> {
        (0..self.len).map(ServiceId::new)
    }

    /// Returns `true` if `service` is a member of this catalog.
    #[must_use]
    pub const fn contains(self, service: ServiceId) -> bool {
        service.index() < self.len
    }
}

impl Default for ServiceCatalog {
    /// The paper's default: six services per deployment.
    fn default() -> Self {
        Self::new(6)
    }
}

/// Static description of a service provider `k ∈ ς`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpSpec {
    /// The SP's identifier.
    pub id: SpId,
    /// `m_k`: the per-CRU price the SP charges its subscribers (Eq. (6)).
    pub cru_price: Money,
    /// `m_k^o`: the SP's per-CRU overhead cost of serving a UE (Eq. (8)).
    pub other_cost: Money,
}

impl SpSpec {
    /// Creates an SP specification.
    #[must_use]
    pub const fn new(id: SpId, cru_price: Money, other_cost: Money) -> Self {
        Self {
            id,
            cru_price,
            other_cost,
        }
    }

    /// The SP's margin before paying a BS: `m_k − m_k^o`.
    ///
    /// Constraint (16) of the paper requires this to strictly exceed any
    /// BS price `p_{i,u}` the SP may face.
    #[must_use]
    pub fn gross_margin(&self) -> Money {
        self.cru_price - self.other_cost
    }
}

/// Static description of a base station / MEC server `i ∈ B`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BsSpec {
    /// The BS's identifier.
    pub id: BsId,
    /// The SP that deployed this BS.
    pub sp: SpId,
    /// Location in the simulation plane.
    pub position: Point,
    /// `c_{i,j}` for each service `j` (dense, indexed by `ServiceId`).
    /// A zero entry means the BS does not host the service (`z_{i,j} = 0`).
    pub cru_budget: Vec<Cru>,
    /// `W_i`: total uplink bandwidth (the paper uses 10 MHz).
    pub uplink_bandwidth: Hertz,
    /// `N_i`: maximum number of RRBs available for offloaded tasks.
    pub rrb_budget: RrbCount,
}

impl BsSpec {
    /// Creates a BS specification.
    #[must_use]
    pub fn new(
        id: BsId,
        sp: SpId,
        position: Point,
        cru_budget: Vec<Cru>,
        uplink_bandwidth: Hertz,
        rrb_budget: RrbCount,
    ) -> Self {
        Self {
            id,
            sp,
            position,
            cru_budget,
            uplink_bandwidth,
            rrb_budget,
        }
    }

    /// `z_{i,j}`: whether this BS hosts `service`.
    ///
    /// Services outside the budget vector are treated as not hosted, so a
    /// BS built against a smaller catalog is still safe to query.
    #[must_use]
    pub fn hosts(&self, service: ServiceId) -> bool {
        self.cru_budget
            .get(service.as_usize())
            .is_some_and(|c| !c.is_zero())
    }

    /// `c_{i,j}`: the CRU budget this BS dedicates to `service`.
    #[must_use]
    pub fn cru_budget_for(&self, service: ServiceId) -> Cru {
        self.cru_budget
            .get(service.as_usize())
            .copied()
            .unwrap_or(Cru::ZERO)
    }

    /// Iterates over the services this BS hosts.
    pub fn hosted_services(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.cru_budget
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(j, _)| ServiceId::new(j as u32))
    }
}

/// Static description of a user equipment `u ∈ U` with one offloading task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UeSpec {
    /// The UE's identifier.
    pub id: UeId,
    /// The SP this UE subscribes to (each UE subscribes to exactly one).
    pub sp: SpId,
    /// Location in the simulation plane.
    pub position: Point,
    /// `j` with `J_{u,j} = 1`: the single service this UE requests.
    pub service: ServiceId,
    /// `c_j^u`: CRUs needed to process the offloaded task (paper: 3–5).
    pub cru_demand: Cru,
    /// `w_u`: required uplink data rate (paper: 2–6 Mbit/s).
    pub rate_demand: BitsPerSec,
    /// Uplink transmit power (paper: 10 dBm).
    pub tx_power: Dbm,
}

impl UeSpec {
    /// Creates a UE specification.
    #[must_use]
    pub const fn new(
        id: UeId,
        sp: SpId,
        position: Point,
        service: ServiceId,
        cru_demand: Cru,
        rate_demand: BitsPerSec,
        tx_power: Dbm,
    ) -> Self {
        Self {
            id,
            sp,
            position,
            service,
            cru_demand,
            rate_demand,
            tx_power,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(budget: Vec<u32>) -> BsSpec {
        BsSpec::new(
            BsId::new(0),
            SpId::new(0),
            Point::new(0.0, 0.0),
            budget.into_iter().map(Cru::new).collect(),
            Hertz::from_mhz(10.0),
            RrbCount::new(55),
        )
    }

    #[test]
    fn catalog_iterates_all_services() {
        let c = ServiceCatalog::new(3);
        let ids: Vec<_> = c.iter().collect();
        assert_eq!(
            ids,
            vec![ServiceId::new(0), ServiceId::new(1), ServiceId::new(2)]
        );
    }

    #[test]
    fn catalog_contains_respects_bounds() {
        let c = ServiceCatalog::new(2);
        assert!(c.contains(ServiceId::new(1)));
        assert!(!c.contains(ServiceId::new(2)));
    }

    #[test]
    #[should_panic(expected = "at least one service")]
    fn empty_catalog_panics() {
        let _ = ServiceCatalog::new(0);
    }

    #[test]
    fn default_catalog_has_six_services() {
        assert_eq!(ServiceCatalog::default().len(), 6);
    }

    #[test]
    fn bs_hosts_iff_budget_nonzero() {
        let b = bs(vec![100, 0, 150]);
        assert!(b.hosts(ServiceId::new(0)));
        assert!(!b.hosts(ServiceId::new(1)));
        assert!(b.hosts(ServiceId::new(2)));
        // Out-of-range services are simply not hosted.
        assert!(!b.hosts(ServiceId::new(7)));
    }

    #[test]
    fn bs_budget_lookup() {
        let b = bs(vec![100, 0, 150]);
        assert_eq!(b.cru_budget_for(ServiceId::new(2)), Cru::new(150));
        assert_eq!(b.cru_budget_for(ServiceId::new(1)), Cru::ZERO);
        assert_eq!(b.cru_budget_for(ServiceId::new(9)), Cru::ZERO);
    }

    #[test]
    fn bs_hosted_services_skips_zero_budgets() {
        let b = bs(vec![0, 5, 0, 7]);
        let hosted: Vec<_> = b.hosted_services().collect();
        assert_eq!(hosted, vec![ServiceId::new(1), ServiceId::new(3)]);
    }

    #[test]
    fn sp_gross_margin() {
        let sp = SpSpec::new(SpId::new(0), Money::new(10.0), Money::new(1.0));
        assert!((sp.gross_margin().get() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ue_spec_carries_paper_fields() {
        let ue = UeSpec::new(
            UeId::new(1),
            SpId::new(2),
            Point::new(10.0, 20.0),
            ServiceId::new(3),
            Cru::new(4),
            BitsPerSec::from_mbps(3.0),
            Dbm::new(10.0),
        );
        assert_eq!(ue.sp, SpId::new(2));
        assert_eq!(ue.cru_demand.get(), 4);
        assert!((ue.rate_demand.to_mbps() - 3.0).abs() < 1e-12);
    }
}
