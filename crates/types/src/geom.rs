//! Plain 2-D geometry data types.
//!
//! Only the *data* lives here; placement algorithms and spatial indexing are
//! in the `dmra-geo` crate. Positions are expressed in meters within the
//! simulation plane (the paper uses a 1200 m × 1200 m area for random BS
//! placement and a 300 m inter-site distance grid for regular placement).

use crate::units::Meters;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the simulation plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting coordinate in meters.
    pub x: f64,
    /// Northing coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from meter coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point (`d_{i,u}` in the paper).
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmra_types::Point;
    /// let d = Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0));
    /// assert!((d.get() - 5.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn distance(self, other: Point) -> Meters {
        Meters::new((self.x - other.x).hypot(self.y - other.y))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, used as the deployment region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner (inclusive).
    pub min: Point,
    /// Maximum corner (inclusive).
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not component-wise ≤ `max`.
    #[must_use]
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "rectangle min corner must not exceed max corner"
        );
        Self { min, max }
    }

    /// A `side × side` square with its minimum corner at the origin — the
    /// shape of the paper's random-placement region (1200 m × 1200 m).
    #[must_use]
    pub fn square(side: Meters) -> Self {
        Self::new(Point::new(0.0, 0.0), Point::new(side.get(), side.get()))
    }

    /// Width along the x axis.
    #[must_use]
    pub fn width(&self) -> Meters {
        Meters::new(self.max.x - self.min.x)
    }

    /// Height along the y axis.
    #[must_use]
    pub fn height(&self) -> Meters {
        Meters::new(self.max.y - self.min.y)
    }

    /// Returns `true` if `p` lies inside the rectangle (borders inclusive).
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Center of the rectangle.
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

impl Default for Rect {
    /// The paper's default region: a 1200 m × 1200 m square at the origin.
    fn default() -> Self {
        Self::square(Meters::new(1200.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert!((a.distance(b).get() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(10.0, -3.0);
        assert_eq!(p.distance(p).get(), 0.0);
    }

    #[test]
    fn square_rect_geometry() {
        let r = Rect::square(Meters::new(1200.0));
        assert_eq!(r.width().get(), 1200.0);
        assert_eq!(r.height().get(), 1200.0);
        assert_eq!(r.center(), Point::new(600.0, 600.0));
    }

    #[test]
    fn contains_is_border_inclusive() {
        let r = Rect::square(Meters::new(100.0));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(100.0, 100.0)));
        assert!(!r.contains(Point::new(100.1, 50.0)));
        assert!(!r.contains(Point::new(-0.1, 50.0)));
    }

    #[test]
    #[should_panic(expected = "rectangle min corner")]
    fn inverted_rect_panics() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn default_rect_matches_paper_region() {
        let r = Rect::default();
        assert_eq!(r.width().get(), 1200.0);
    }

    proptest! {
        #[test]
        fn prop_distance_symmetry(
            ax in -2000.0f64..2000.0, ay in -2000.0f64..2000.0,
            bx in -2000.0f64..2000.0, by in -2000.0f64..2000.0,
        ) {
            let (a, b) = (Point::new(ax, ay), Point::new(bx, by));
            prop_assert!((a.distance(b).get() - b.distance(a).get()).abs() < 1e-9);
        }

        #[test]
        fn prop_triangle_inequality(
            ax in -1000.0f64..1000.0, ay in -1000.0f64..1000.0,
            bx in -1000.0f64..1000.0, by in -1000.0f64..1000.0,
            cx in -1000.0f64..1000.0, cy in -1000.0f64..1000.0,
        ) {
            let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
            prop_assert!(
                a.distance(c).get() <= a.distance(b).get() + b.distance(c).get() + 1e-9
            );
        }
    }
}
