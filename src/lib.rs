//! # DMRA — Decentralized Multi-SP Resource Allocation for Mobile Edge Computing
//!
//! A from-scratch Rust reproduction of *Zhang, Du, Ye, Liu, Yuan — "DMRA: A
//! Decentralized Resource Allocation Scheme for Multi-SP Mobile Edge
//! Computing" (ICDCS 2019)*.
//!
//! This facade crate re-exports the workspace's subsystems:
//!
//! * [`types`] — typed IDs, physical units, entity specifications.
//! * [`obs`] — zero-dependency telemetry: metrics registry, flight
//!   recorder, time series, Prometheus exposition and the logging facade.
//! * [`geo`] — deployment geometry, placement generators, spatial index.
//! * [`radio`] — OFDMA uplink model: path loss, SINR, per-RRB rates.
//! * [`econ`] — pricing (Eqs. 9–10) and SP utility ledger (Eqs. 5–8).
//! * [`proto`] — the round-based decentralized message-passing substrate.
//! * [`core`] — problem instances, allocations, and the DMRA matcher in
//!   both centralized-state and agent-message-passing executions.
//! * [`baselines`] — DCSP, NonCo and sanity baselines.
//! * [`sim`] — scenario generation, metrics, sweeps, and the experiment
//!   registry reproducing every figure of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use dmra::prelude::*;
//!
//! // The paper's default setup: 5 SPs × 5 BSs × 6 services, regular grid.
//! let scenario = ScenarioConfig::paper_defaults()
//!     .with_ues(200)
//!     .with_seed(42);
//! let instance = scenario.build().expect("valid scenario");
//!
//! let allocation = Dmra::default().allocate(&instance);
//! let report = instance.profit_report(&allocation);
//! assert!(report.total_profit().get() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use dmra_baselines as baselines;
pub use dmra_core as core;
pub use dmra_econ as econ;
pub use dmra_geo as geo;
pub use dmra_obs as obs;
pub use dmra_proto as proto;
pub use dmra_radio as radio;
pub use dmra_sim as sim;
pub use dmra_types as types;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use dmra_baselines::{CloudOnly, Dcsp, GreedyProfit, NonCo, RandomAllocator};
    pub use dmra_core::{Allocation, Allocator, Dmra, DmraConfig, ProblemInstance, SolveMode};
    pub use dmra_econ::PricingConfig;
    pub use dmra_sim::{
        BsPlacement, Metrics, ScenarioConfig, ServicePopularity, SweepRunner, UePlacement,
    };
    pub use dmra_types::{
        BitsPerSec, BsId, Cru, Db, Dbm, Hertz, Meters, Money, Point, Rect, RrbCount, ServiceId,
        SpId, UeId,
    };
}
