//! Run DMRA as a genuinely decentralized protocol: UE and BS agents
//! exchanging service requests, accepts and resource broadcasts over the
//! round engine — including what happens on a lossy control channel.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example decentralized_protocol
//! ```

use dmra::prelude::*;
use dmra::proto::DropPolicy;
use dmra_core::agents::{run_decentralized, run_protocol, ProtocolOptions};
use dmra_core::DmraConfig;

fn main() -> Result<(), dmra::types::Error> {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(400)
        .with_seed(7)
        .build()?;
    let config = DmraConfig::paper_defaults();

    // Reference: the centralized-state execution of Algorithm 1.
    let central = Dmra::new(config).allocate(&instance);
    let central_profit = instance.total_profit(&central);

    // The same algorithm as message-passing agents, reliable channel.
    let out = run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000)?;
    assert_eq!(
        out.allocation, central,
        "reliable decentralized execution is bit-identical to the matcher"
    );
    println!("reliable channel:");
    println!("  rounds:            {}", out.stats.rounds);
    println!("  messages:          {}", out.stats.messages_sent);
    for (kind, count) in &out.stats.by_kind {
        println!("    {kind:<18} {count}");
    }
    println!(
        "  profit:            {:.1} (centralized: {:.1})",
        instance.total_profit(&out.allocation).get(),
        central_profit.get()
    );

    // Lossy control channel: the protocol stays safe and mostly live.
    println!("\nlossy channels (same instance):");
    println!(
        "{:>10} {:>8} {:>10} {:>9} {:>8} {:>10}",
        "drop rate", "rounds", "messages", "dropped", "served", "profit"
    );
    for drop_pct in [5u32, 10, 20, 30] {
        let policy = DropPolicy::new(f64::from(drop_pct) / 100.0, 1234);
        let out = run_decentralized(&instance, &config, policy, 100_000)?;
        out.allocation
            .validate(&instance)
            .expect("lossy runs never violate resource constraints");
        println!(
            "{:>9}% {:>8} {:>10} {:>9} {:>8} {:>10.1}",
            drop_pct,
            out.stats.rounds,
            out.stats.messages_sent,
            out.stats.messages_dropped,
            out.allocation.edge_served(),
            instance.total_profit(&out.allocation).get()
        );
    }
    println!("\n(served count under loss trails the reliable run; every");
    println!(" allocation above still satisfies all TPM constraints)");

    // Fail-stop crashes: kill BSs before round 0; UEs time out, presume
    // them dead after three retries, and fail over.
    println!("\nfail-stop crashes (reliable channel):");
    println!(
        "{:>12} {:>8} {:>8} {:>10}",
        "crashed BSs", "rounds", "served", "profit"
    );
    for n_dead in [0usize, 2, 5, 8] {
        let crashed: Vec<(BsId, usize)> = (0..n_dead as u32)
            .map(|i| (BsId::new(i * 3), 0)) // spread the dead BSs around
            .collect();
        let out = run_protocol(
            &instance,
            &config,
            ProtocolOptions {
                crashed_bss: crashed.clone(),
                ..ProtocolOptions::default()
            },
        )?;
        out.allocation.validate(&instance)?;
        assert!(out
            .allocation
            .edge_pairs()
            .all(|(_, bs)| !crashed.iter().any(|&(dead, _)| dead == bs)));
        println!(
            "{:>12} {:>8} {:>8} {:>10.1}",
            n_dead,
            out.stats.rounds,
            out.allocation.edge_served(),
            instance.total_profit(&out.allocation).get()
        );
    }
    println!("\n(no UE is ever served by a dead BS; the healthy neighbours");
    println!(" absorb the displaced load)");
    Ok(())
}
