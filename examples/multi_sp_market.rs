//! A heterogeneous multi-SP market built directly against the core API
//! (no scenario generator): three SPs with different subscriber prices and
//! deployments, showing how pricing asymmetry shifts per-SP profit.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_sp_market
//! ```

use dmra::core::CoverageModel;
use dmra::econ::PricingConfig;
use dmra::prelude::*;
use dmra::radio::RadioConfig;
use dmra::types::{BsSpec, ServiceCatalog, SpSpec, UeSpec};
use dmra_geo::rng::component_rng;
use rand::Rng;

fn main() -> Result<(), dmra::types::Error> {
    // Three SPs with different business models: a premium operator
    // (high subscriber price, dense deployment), a budget operator, and a
    // mid-tier one. All satisfy constraint (16).
    let sps = vec![
        SpSpec::new(SpId::new(0), Money::new(9.5), Money::new(1.0)), // premium
        SpSpec::new(SpId::new(1), Money::new(7.5), Money::new(0.8)), // budget
        SpSpec::new(SpId::new(2), Money::new(8.5), Money::new(1.0)), // mid
    ];
    let catalog = ServiceCatalog::new(4);

    // Premium deploys 6 BSs, the others 3 each — an uneven market.
    let mut rng = component_rng(2024, "market");
    let mut bss = Vec::new();
    for (sp, count) in [(0u32, 6usize), (1, 3), (2, 3)] {
        for _ in 0..count {
            let id = BsId::new(bss.len() as u32);
            let pos = Point::new(
                rng.random_range(200.0..1000.0),
                rng.random_range(200.0..1000.0),
            );
            let budgets = (0..catalog.len())
                .map(|_| Cru::new(rng.random_range(100..=150)))
                .collect();
            bss.push(BsSpec::new(
                id,
                SpId::new(sp),
                pos,
                budgets,
                Hertz::from_mhz(10.0),
                RrbCount::new(55),
            ));
        }
    }

    // 300 subscribers, market shares 50% / 30% / 20%.
    let mut ues = Vec::new();
    for u in 0..300u32 {
        let sp = match rng.random_range(0..10) {
            0..=4 => 0,
            5..=7 => 1,
            _ => 2,
        };
        ues.push(UeSpec::new(
            UeId::new(u),
            SpId::new(sp),
            Point::new(rng.random_range(0.0..1200.0), rng.random_range(0.0..1200.0)),
            ServiceId::new(rng.random_range(0..catalog.len())),
            Cru::new(rng.random_range(3..=5)),
            BitsPerSec::from_mbps(rng.random_range(2.0..=6.0)),
            Dbm::new(10.0),
        ));
    }

    let instance = dmra::core::ProblemInstance::build(
        sps,
        bss,
        ues,
        catalog,
        PricingConfig::paper_defaults(),
        RadioConfig::paper_defaults(),
        CoverageModel::FixedRadius(Meters::new(400.0)),
    )?;

    let allocation = Dmra::default().allocate(&instance);
    allocation.validate(&instance)?;

    println!("three-SP market under DMRA (premium sp0 / budget sp1 / mid sp2):\n");
    println!("{}\n", instance.profit_report(&allocation));
    let m = Metrics::compute(&instance, &allocation);
    println!("{m}");

    // The premium SP's denser deployment should let it keep more of its
    // subscribers on its own (cheap) BSs than the budget SP can.
    let report = instance.profit_report(&allocation);
    let premium = &report.per_sp[0];
    println!(
        "\npremium SP serves {} of its subscribers at the edge;\n\
         budget SP serves {} — deployment density buys edge capacity.",
        premium.edge_served, report.per_sp[1].edge_served
    );
    Ok(())
}
