//! Quickstart: build the paper's default scenario, run DMRA and the
//! baselines on the same instance, and print the headline metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dmra::prelude::*;

fn main() -> Result<(), dmra::types::Error> {
    // Section VI-A of the paper: 5 SPs × 5 BSs on a 300 m grid, 6 services,
    // CRU budgets 100–150, demands 3–5 CRUs and 2–6 Mbit/s per task.
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(600)
        .with_seed(42)
        .build()?;

    println!(
        "scenario: {} SPs, {} BSs, {} UEs, {} services\n",
        instance.n_sps(),
        instance.n_bss(),
        instance.n_ues(),
        instance.catalog().len()
    );

    let algorithms: Vec<Box<dyn Allocator>> = vec![
        Box::new(Dmra::default()),
        Box::new(Dcsp::default()),
        Box::new(NonCo::default()),
        Box::new(GreedyProfit::default()),
        Box::new(RandomAllocator::new(42)),
        Box::new(CloudOnly::default()),
    ];

    println!(
        "{:<14} {:>12} {:>8} {:>8} {:>10} {:>10}",
        "algorithm", "profit", "served", "cloud", "same-SP", "RRB util"
    );
    for algo in &algorithms {
        let allocation = algo.allocate(&instance);
        allocation
            .validate(&instance)
            .expect("allocators must satisfy the TPM constraints");
        let m = Metrics::compute(&instance, &allocation);
        println!(
            "{:<14} {:>12.1} {:>8} {:>8} {:>9.1}% {:>9.1}%",
            algo.name(),
            m.total_profit.get(),
            m.edge_served,
            m.cloud_forwarded,
            m.same_sp_fraction * 100.0,
            m.rrb_utilization * 100.0
        );
    }

    // Per-SP breakdown for the winning scheme.
    let allocation = Dmra::default().allocate(&instance);
    println!("\nDMRA per-SP utility breakdown (Eqs. (5)-(8)):");
    println!("{}", instance.profit_report(&allocation));
    Ok(())
}
