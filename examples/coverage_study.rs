//! How the (paper-unspecified) coverage radius interacts with the ρ knob.
//!
//! The paper never quantifies when a BS "can cover" a UE. The radius
//! controls the distance spread of a UE's candidates, and with it how much
//! extra radio a capacity-seeking (high-ρ) proposal can waste. This study
//! sweeps both knobs to find where Fig. 6/7's claimed trend (more ρ ⇒
//! fewer cloud forwards) holds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example coverage_study
//! ```

use dmra::prelude::*;
use dmra::sim::UePlacement;
use dmra_core::{CoverageModel, DmraConfig};

fn main() -> Result<(), dmra::types::Error> {
    let rhos = [0.0, 50.0, 200.0, 800.0];
    let radii = [250.0, 350.0, 500.0, 700.0];
    let replications = 3u64;

    for (label, placement) in [
        ("uniform", UePlacement::Uniform),
        (
            "hotspots",
            UePlacement::Hotspots {
                n_hotspots: 4,
                spread: Meters::new(120.0),
                fraction: 0.7,
            },
        ),
    ] {
        println!("== {label} UEs: forwarded load (Mbit/s) by radius × rho ==");
        print!("{:>8}", "radius");
        for &rho in &rhos {
            print!("  rho={rho:<6}");
        }
        println!();
        for &radius in &radii {
            print!("{radius:>8}");
            for &rho in &rhos {
                let mut forwarded = 0.0;
                for rep in 0..replications {
                    let mut cfg = ScenarioConfig::paper_defaults()
                        .with_iota(1.1)
                        .with_ues(1000)
                        .with_ue_placement(placement)
                        .with_seed(2000 + rep);
                    cfg.coverage = CoverageModel::FixedRadius(Meters::new(radius));
                    let instance = cfg.build()?;
                    let dmra = Dmra::new(DmraConfig::paper_defaults().with_rho(rho));
                    let m = Metrics::compute(&instance, &dmra.allocate(&instance));
                    forwarded += m.forwarded_load_mbps;
                }
                print!("  {:>10.1}", forwarded / replications as f64);
            }
            println!();
        }
        println!();
    }
    Ok(())
}
