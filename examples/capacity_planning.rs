//! Capacity planning with the online simulator: how dense must an SP's
//! deployment be to hold a target admission ratio as offered load grows?
//!
//! Uses the dynamic (arrival/departure) regime from `dmra_sim::dynamic`:
//! tasks arrive as a Poisson process and hold CRUs/RRBs for a geometric
//! number of epochs; DMRA matches each epoch's arrivals against the
//! remaining capacities.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use dmra::prelude::*;
use dmra::sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};

fn main() -> Result<(), dmra::types::Error> {
    println!("admission ratio by deployment size × offered load");
    println!("(5 SPs, mean holding 5 epochs, 80 epochs, 3 seeds)\n");

    let rates = [40.0, 80.0, 120.0, 160.0];
    print!("{:>12}", "grid");
    for rate in rates {
        print!("  rate={rate:<6}");
    }
    println!();

    for (label, rows, cols, bss_per_sp) in [
        ("4x5 (20)", 4u32, 5u32, 4u32),
        ("5x5 (25)", 5, 5, 5),
        ("6x5 (30)", 6, 5, 6),
    ] {
        print!("{label:>12}");
        for rate in rates {
            let mut ratio_sum = 0.0;
            for seed in 0..3u64 {
                let mut scenario = ScenarioConfig::paper_defaults();
                scenario.bss_per_sp = bss_per_sp;
                scenario.bs_placement = BsPlacement::RegularGrid {
                    rows,
                    cols,
                    isd: Meters::new(300.0),
                };
                let out = DynamicSimulator::new(DynamicConfig {
                    scenario,
                    arrival_rate: rate,
                    mean_holding: 5.0,
                    holding: HoldingDistribution::Geometric,
                    epochs: 80,
                    seed: 900 + seed,
                })
                .run_event()?;
                ratio_sum += out.admission_ratio();
            }
            print!("  {:>10.1}%", 100.0 * ratio_sum / 3.0);
        }
        println!();
    }

    println!(
        "\nreading: pick the smallest deployment whose row stays above the\n\
         SLA target at the forecast load (e.g. ≥95% admissions)."
    );
    Ok(())
}
