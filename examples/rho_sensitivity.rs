//! Sensitivity of DMRA to the preference weight ρ (Eq. (17)) under
//! homogeneous vs hotspot workloads — the scenario behind Figs. 6 and 7.
//!
//! The ρ term steers UEs toward resource-rich BSs. On a perfectly uniform
//! workload over a regular grid the load is already balanced, so ρ has
//! little to gain; when UEs cluster in popular areas (the case the paper's
//! introduction motivates), capacity-seeking pays off: fewer tasks are
//! forwarded to the remote cloud and total SP profit rises.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rho_sensitivity
//! ```

use dmra::prelude::*;
use dmra::sim::UePlacement;
use dmra_core::DmraConfig;

fn main() -> Result<(), dmra::types::Error> {
    let rhos = [0.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0];
    let replications = 5u64;

    for (label, placement) in [
        ("uniform UEs", UePlacement::Uniform),
        (
            "hotspot UEs (70% in 4 clusters)",
            UePlacement::Hotspots {
                n_hotspots: 4,
                spread: Meters::new(120.0),
                fraction: 0.7,
            },
        ),
    ] {
        println!("== {label} (iota = 1.1, 1000 UEs, regular grid) ==");
        println!(
            "{:>6} {:>14} {:>20} {:>12}",
            "rho", "profit", "forwarded (Mbit/s)", "served"
        );
        for &rho in &rhos {
            let mut profit = 0.0;
            let mut forwarded = 0.0;
            let mut served = 0.0;
            for rep in 0..replications {
                let instance = ScenarioConfig::paper_defaults()
                    .with_iota(1.1)
                    .with_ues(1000)
                    .with_ue_placement(placement)
                    .with_seed(1000 + rep)
                    .build()?;
                let dmra = Dmra::new(DmraConfig::paper_defaults().with_rho(rho));
                let allocation = dmra.allocate(&instance);
                let m = Metrics::compute(&instance, &allocation);
                profit += m.total_profit.get();
                forwarded += m.forwarded_load_mbps;
                served += m.edge_served as f64;
            }
            let n = replications as f64;
            println!(
                "{:>6} {:>14.1} {:>20.1} {:>12.1}",
                rho,
                profit / n,
                forwarded / n,
                served / n
            );
        }
        println!();
    }
    Ok(())
}
