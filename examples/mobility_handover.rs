//! Mobility and the handover/profit trade-off.
//!
//! As UEs move, the best UE–BS association drifts (the paper's Section V
//! motivation for a decentralized, re-runnable matcher). This example
//! compares the two reallocation policies at several speeds:
//!
//! * **full** — re-run DMRA on everyone each epoch (maximum profit,
//!   maximum handover churn);
//! * **sticky** — keep feasible assignments, re-match only broken ones.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mobility_handover
//! ```

use dmra::prelude::*;
use dmra::sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};

fn main() -> Result<(), dmra::types::Error> {
    println!("random-waypoint mobility, 400 UEs, 25 BSs, 20 epochs × 10 s\n");
    println!(
        "{:>10} {:>8} | {:>10} {:>10} | {:>12} {:>12}",
        "speed", "policy", "handovers", "HO rate", "mean profit", "mean served"
    );
    for speed in [1.5, 8.0, 25.0] {
        for (label, policy) in [
            ("full", MobilityPolicy::FullReallocation),
            ("sticky", MobilityPolicy::Sticky),
        ] {
            let out = MobilitySimulator::new(MobilityConfig {
                scenario: ScenarioConfig::paper_defaults().with_ues(400),
                speed_mps: (speed * 0.8, speed * 1.2),
                epoch_seconds: 10.0,
                epochs: 20,
                seed: 77,
                policy,
                stationary_fraction: 0.0,
            })
            .run()?;
            let mean_profit = out.profit_timeline.iter().map(|p| p.get()).sum::<f64>()
                / out.profit_timeline.len() as f64;
            let mean_served =
                out.served_timeline.iter().sum::<usize>() as f64 / out.served_timeline.len() as f64;
            println!(
                "{:>8} m/s {:>8} | {:>10} {:>10.4} | {:>12.1} {:>12.1}",
                speed,
                label,
                out.handovers,
                out.handover_rate(),
                mean_profit,
                mean_served
            );
        }
    }
    println!(
        "\nsticky trades a little profit for far fewer handovers — the\n\
         signalling the full policy saves the RAN is the decentralized\n\
         protocol traffic measured by `dmra protocol`."
    );
    Ok(())
}
