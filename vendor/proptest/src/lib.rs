//! Offline stub of the [`proptest`](https://crates.io/crates/proptest)
//! surface this workspace uses.
//!
//! Implements deterministic random-case property testing: the
//! [`proptest!`] macro runs each property over `ProptestConfig::cases`
//! values drawn from [`Strategy`] implementations, seeded from the test's
//! name so every run replays the same cases. Unsupported upstream
//! features — shrinking, persistence of regressions, `prop_filter`,
//! recursive strategies — are intentionally absent; a failing case prints
//! its inputs via the panic message of the underlying `assert!`.

#![forbid(unsafe_code)]

/// Test-runner configuration (only `cases` is honored).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// The deterministic splitmix64 stream the runner draws cases from.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a label (the property's name), so each
        /// property replays identical cases on every run.
        #[must_use]
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for &b in label.as_bytes() {
                state = Self::mix(state ^ u64::from(b));
            }
            Self { state }
        }

        fn mix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform double in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, span)`; `span` must be positive.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the runner's RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, usize, i32, i64);

    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the upstream `prop` module alias.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions that run a body over random strategy draws.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))] // optional
///     #[test]
///     fn prop_name(x in 0u32..7, y in strategy_expr()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])+ fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __pt_config: $crate::test_runner::ProptestConfig = $config;
                let mut __pt_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __pt_case in 0..__pt_config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 2u32..9, f in -1.0f64..1.0, b in prop::bool::ANY) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(u32::from(b) <= 1);
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u32..5, 0.0f64..1.0), 1..10).prop_map(|pairs| {
                pairs.into_iter().map(|(a, _)| a).collect::<Vec<u32>>()
            }),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&a| a < 5));
        }
    }

    #[test]
    fn runner_is_deterministic_per_label() {
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        let mut c = crate::test_runner::TestRng::deterministic("other");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
