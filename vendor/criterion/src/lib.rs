//! Offline stub of the [`criterion`](https://crates.io/crates/criterion)
//! API surface this workspace's benches use.
//!
//! Implements a deliberately small wall-clock harness: each benchmark is
//! warmed up once, then timed over a handful of batches, and the mean,
//! minimum and maximum per-iteration times are printed in a
//! criterion-like format. There is no statistical analysis, HTML report
//! or baseline comparison — for machine-readable perf tracking the
//! workspace commits `BENCH_sweep.json` instead (see `scripts/bench.sh`).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    /// Batches timed per benchmark (settable per group).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, self.sample_size, &mut f);
    }
}

/// A named set of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input);
        });
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one batch per harness sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: aim for batches of at least ~10 ms so
        // short routines are not swamped by timer resolution.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_batch as u64;
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        for s in &b.samples {
            per_iter.push(s.as_secs_f64() / b.iters_per_sample.max(1) as f64);
        }
    }
    if per_iter.is_empty() {
        println!("{label:<40} (no samples — closure never called iter)");
        return;
    }
    let n = per_iter.len() as f64;
    let mean = per_iter.iter().sum::<f64>() / n;
    let lo = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(mean),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a bench group function, mirroring upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(900).to_string(), "900");
    }
}
