//! Offline stub of the [`serde`](https://crates.io/crates/serde) facade.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no in-tree
//! code serializes through serde), so offline builds need nothing more
//! than the trait names and derive macros that expand to nothing. The
//! `derive` feature exists so dependents can keep
//! `features = ["derive"]` in their manifests.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented in-tree).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented in-tree).
pub trait Deserialize<'de>: Sized {}
