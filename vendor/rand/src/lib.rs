//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.9 API.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng`] and the [`Rng`] convenience methods `random`,
//! `random_range` and `random_bool`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! splitmix64 — a different stream than upstream `StdRng` (ChaCha12), but
//! every consumer in this workspace only relies on determinism and
//! statistical quality, not on a specific stream. Figure data and
//! seed-sensitive test thresholds were re-derived against this generator
//! (see EXPERIMENTS.md).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with
    /// splitmix64 (the upstream-recommended seeding scheme).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a double in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from uniform random bits without parameters.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Samples an integer uniformly from `[0, span)` (`span > 0`) with the
/// widening-multiply method; the bias at 64-bit spans is below 2⁻⁶⁴ per
/// draw, far under anything the simulations can resolve.
fn uniform_u64_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(span, rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(span + 1, rng) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                ((self.start as $wide).wrapping_add(uniform_u64_below(span, rng) as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as $wide).wrapping_add(uniform_u64_below(span + 1, rng) as $wide)) as $t
            }
        }
    )*};
}

impl_signed_range!(i32 => i64, i64 => i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12-based `StdRng`; see the crate docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; reseed it.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..7);
            assert!((3..7).contains(&x));
            let y: usize = rng.random_range(0..=0);
            assert_eq!(y, 0);
            let f: f64 = rng.random_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let g: f64 = rng.random_range(1.5..=1.5);
            assert!((g - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo = lo.min(f);
            hi = hi.max(f);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor spread: [{lo}, {hi}]");
    }
}
