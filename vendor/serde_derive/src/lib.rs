//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives the serde traits on its data types for
//! downstream consumers, but nothing in-tree serializes through serde
//! (the few JSON artifacts are emitted by hand). Offline, these derives
//! expand to nothing; the `#[serde(...)]` helper attributes are accepted
//! and ignored.

use proc_macro::TokenStream;

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
