//! Cross-crate conformance: every allocator must produce valid,
//! deterministic allocations on every scenario family.

use dmra::prelude::*;
use dmra::sim::UePlacement;
use dmra_core::DmraConfig;

fn allocators() -> Vec<Box<dyn Allocator>> {
    vec![
        Box::new(Dmra::default()),
        Box::new(Dmra::new(DmraConfig::paper_defaults().with_rho(0.0))),
        Box::new(Dmra::new(DmraConfig {
            same_sp_preference: false,
            ..DmraConfig::paper_defaults()
        })),
        Box::new(Dcsp::default()),
        Box::new(NonCo::default()),
        Box::new(GreedyProfit::default()),
        Box::new(RandomAllocator::new(3)),
        Box::new(CloudOnly::default()),
    ]
}

fn scenario_grid() -> Vec<ScenarioConfig> {
    let mut configs = Vec::new();
    for iota in [1.1, 2.0] {
        for random_placement in [false, true] {
            for n_ues in [50usize, 300] {
                let mut cfg = ScenarioConfig::paper_defaults()
                    .with_iota(iota)
                    .with_ues(n_ues);
                if random_placement {
                    cfg = cfg.with_random_placement();
                }
                configs.push(cfg);
            }
        }
    }
    configs.push(
        ScenarioConfig::paper_defaults()
            .with_ues(200)
            .with_ue_placement(UePlacement::Hotspots {
                n_hotspots: 3,
                spread: Meters::new(100.0),
                fraction: 0.8,
            }),
    );
    // Partial service hosting (S_i ⊂ S) exercises constraint (13).
    configs.push(
        ScenarioConfig::paper_defaults()
            .with_ues(250)
            .with_services_per_bs(3),
    );
    configs
}

#[test]
fn every_allocator_satisfies_tpm_constraints_on_every_scenario() {
    for (c_idx, config) in scenario_grid().into_iter().enumerate() {
        for seed in [1u64, 99] {
            let instance = config
                .clone()
                .with_seed(seed)
                .build()
                .unwrap_or_else(|e| panic!("scenario {c_idx} seed {seed}: {e}"));
            for algo in allocators() {
                let allocation = algo.allocate(&instance);
                allocation.validate(&instance).unwrap_or_else(|e| {
                    panic!("{} on scenario {c_idx} seed {seed}: {e}", algo.name())
                });
                assert_eq!(allocation.len(), instance.n_ues());
            }
        }
    }
}

#[test]
fn every_allocator_is_deterministic() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(250)
        .with_seed(5)
        .build()
        .unwrap();
    for algo in allocators() {
        let a = algo.allocate(&instance);
        let b = algo.allocate(&instance);
        assert_eq!(a, b, "{} must be deterministic", algo.name());
    }
}

#[test]
fn profit_is_never_negative_under_constraint_16() {
    // Constraint (16) guarantees every edge assignment is profitable, so
    // no allocation can produce negative total profit.
    for seed in 0..5u64 {
        let instance = ScenarioConfig::paper_defaults()
            .with_ues(150)
            .with_seed(seed)
            .build()
            .unwrap();
        for algo in allocators() {
            let allocation = algo.allocate(&instance);
            let profit = instance.total_profit(&allocation);
            assert!(
                profit.get() >= 0.0,
                "{} produced negative profit {profit}",
                algo.name()
            );
        }
    }
}

#[test]
fn per_sp_profits_sum_to_total() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(300)
        .with_seed(8)
        .build()
        .unwrap();
    let allocation = Dmra::default().allocate(&instance);
    let report = instance.profit_report(&allocation);
    let sum: f64 = report.per_sp.iter().map(|p| p.profit().get()).sum();
    assert!((sum - report.total_profit().get()).abs() < 1e-6);
    assert_eq!(
        report.total_edge_served() + report.total_cloud_forwarded(),
        instance.n_ues() as u64
    );
}

#[test]
fn remaining_resources_never_underflow() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(700)
        .with_seed(4)
        .build()
        .unwrap();
    for algo in allocators() {
        let allocation = algo.allocate(&instance);
        // remaining_* saturate at zero only if over-allocated; validate()
        // already rejects that, so these must be exact non-negative counts.
        let rem_rrb = instance.remaining_rrbs(&allocation);
        assert_eq!(rem_rrb.len(), instance.n_bss());
        let rem_cru = instance.remaining_cru(&allocation);
        for (bs, rems) in rem_cru.iter().enumerate() {
            for (svc, rem) in rems.iter().enumerate() {
                let cap = instance.bss()[bs].cru_budget[svc];
                assert!(*rem <= cap, "{}: remaining exceeds capacity", algo.name());
            }
        }
    }
}

#[test]
fn cloud_only_is_the_profit_floor_and_greedy_is_a_strong_reference() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(400)
        .with_seed(21)
        .build()
        .unwrap();
    let greedy = instance.total_profit(&GreedyProfit::default().allocate(&instance));
    for algo in allocators() {
        let profit = instance.total_profit(&algo.allocate(&instance));
        assert!(profit.get() >= 0.0);
        // Nothing should beat the centralized density greedy by a lot.
        assert!(
            profit.get() <= greedy.get() * 1.10 + 1e-9,
            "{} ({profit}) implausibly beats greedy ({greedy})",
            algo.name()
        );
    }
}
