//! The component-decomposed solve is bit-identical to the monolithic one.
//!
//! `decompose` partitions each instance into connected components of the
//! candidate-link bipartite graph; `Dmra` with `SolveMode::Components`
//! solves them independently on the worker pool and merges the outcomes
//! in global UE order (DESIGN.md §14). These tests pin the structural
//! invariants of the partition itself (exact cover, no crossing links,
//! dense instances collapse to one component) and outcome equality across
//! random scenarios, thread counts, and all simulation engines including
//! the region-sharded runtime.

use dmra::prelude::*;
use dmra::sim::BsPlacement;
use dmra_core::{decompose, Threads};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
use proptest::prelude::*;

/// Small but structurally diverse scenarios (mirrors tests/properties.rs);
/// sparse placements with few BSs per SP routinely produce multi-component
/// instances, dense grids produce one.
fn arb_scenario() -> impl Strategy<Value = ScenarioConfig> {
    (
        1u32..4,         // n_sps
        1u32..4,         // bss_per_sp
        1u32..5,         // n_services
        1usize..120,     // n_ues
        prop::bool::ANY, // random placement
        1.05f64..2.2,    // iota (constraint (16) headroom, see properties.rs)
        0u64..1000,      // seed
    )
        .prop_map(
            |(n_sps, bss_per_sp, n_services, n_ues, random, iota, seed)| {
                let mut cfg = ScenarioConfig::paper_defaults()
                    .with_iota(iota)
                    .with_ues(n_ues)
                    .with_seed(seed);
                cfg.n_sps = n_sps;
                cfg.bss_per_sp = bss_per_sp;
                cfg.n_services = n_services;
                cfg.bs_placement = if random {
                    BsPlacement::UniformRandom
                } else {
                    BsPlacement::RegularGrid {
                        rows: n_sps,
                        cols: bss_per_sp,
                        isd: Meters::new(300.0),
                    }
                };
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The components plus the cloud-only set are an exact partition of
    /// the UE index space: every UE appears exactly once.
    #[test]
    fn prop_components_exactly_partition_the_ue_set(cfg in arb_scenario()) {
        let instance = cfg.build().unwrap();
        let d = decompose(&instance);
        let mut seen: Vec<u32> = d.cloud_only.clone();
        for c in &d.components {
            prop_assert!(!c.ues.is_empty(), "empty component emitted");
            prop_assert!(!c.bss.is_empty(), "component without BSs");
            prop_assert!(c.ues.windows(2).all(|w| w[0] < w[1]), "UE list not ascending");
            prop_assert!(c.bss.windows(2).all(|w| w[0] < w[1]), "BS list not ascending");
            seen.extend_from_slice(&c.ues);
        }
        seen.sort_unstable();
        let expected: Vec<u32> = (0..instance.n_ues() as u32).collect();
        prop_assert_eq!(seen, expected, "partition is not an exact cover");
        prop_assert_eq!(d.n_ues(), instance.n_ues());
    }

    /// No candidate link crosses a component boundary: each UE's entire
    /// candidate row lies inside its own component, and cloud-only UEs
    /// have genuinely empty rows. This is the soundness condition that
    /// makes per-component solves independent.
    #[test]
    fn prop_no_candidate_link_crosses_components(cfg in arb_scenario()) {
        let instance = cfg.build().unwrap();
        let d = decompose(&instance);
        for u in &d.cloud_only {
            prop_assert!(instance.candidates(UeId::new(*u)).is_empty());
        }
        for c in &d.components {
            for u in &c.ues {
                let row = instance.candidates(UeId::new(*u));
                prop_assert!(!row.is_empty(), "component UE with empty row");
                for link in row {
                    prop_assert!(
                        c.bss.binary_search(&(link.bs.as_usize() as u32)).is_ok(),
                        "UE {u} links to BS {} outside its component", link.bs
                    );
                }
            }
        }
    }

    /// Outcome equality on random scenarios: the component path returns
    /// the exact same `DmraOutcome` — allocation, iteration count, and
    /// every telemetry trajectory — as the monolithic path.
    #[test]
    fn prop_component_solve_equals_monolithic_on_random_scenarios(cfg in arb_scenario()) {
        let instance = cfg.build().unwrap();
        let mono = Dmra::default()
            .with_solve_mode(SolveMode::Monolithic)
            .solve(&instance)
            .unwrap();
        for threads in [1, 4] {
            let comp = Dmra::default()
                .with_solve_mode(SolveMode::Components)
                .with_solve_threads(Threads::Fixed(threads))
                .solve(&instance)
                .unwrap();
            prop_assert_eq!(&comp, &mono, "diverged at {} solve threads", threads);
        }
    }
}

/// A dense instance — the paper's default scenario, where every UE's
/// coverage disc bridges adjacent grid BSs — collapses to one component,
/// so `SolveMode::Components` degrades to the ordinary serial path with
/// no fan-out overhead.
#[test]
fn fully_connected_instance_degrades_to_one_component() {
    let instance = ScenarioConfig::paper_defaults().build().unwrap();
    let d = decompose(&instance);
    assert_eq!(
        d.components.len(),
        1,
        "paper grid should be fully connected"
    );
    assert!(d.cloud_only.is_empty());
    assert_eq!(d.components[0].ues.len(), instance.n_ues());
    let mono = Dmra::default().solve(&instance).unwrap();
    let comp = Dmra::default()
        .with_solve_mode(SolveMode::Components)
        .solve(&instance)
        .unwrap();
    assert_eq!(comp, mono);
}

fn dyn_config(rate: f64, seed: u64, epochs: usize) -> DynamicConfig {
    DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: rate,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs,
        seed,
    }
}

fn components_dmra() -> Box<dyn Allocator> {
    Box::new(Dmra::default().with_solve_mode(SolveMode::Components))
}

/// Engine-level equality: the incremental, event-driven and region-sharded
/// dynamic engines produce identical summaries whether their allocator
/// solves monolithically or per component.
#[test]
fn dynamic_engines_are_bit_identical_under_component_solves() {
    for &(rate, seed) in &[(30.0, 3u64), (120.0, 8)] {
        let cfg = dyn_config(rate, seed, 15);
        let mono = DynamicSimulator::new(cfg.clone()).run().unwrap();
        let sim = DynamicSimulator::with_allocator(cfg, components_dmra());
        assert_eq!(
            sim.run().unwrap(),
            mono,
            "incremental diverged (rate {rate})"
        );
        assert_eq!(
            sim.run_event().unwrap(),
            mono,
            "event diverged (rate {rate})"
        );
        assert_eq!(
            sim.run_sharded_n(4).unwrap(),
            mono,
            "sharded diverged (rate {rate})"
        );
    }
}

/// Same pin for the mobility engine, both policies, including the sticky
/// policy's residual re-match path and the sharded grid runtime.
#[test]
fn mobility_engines_are_bit_identical_under_component_solves() {
    for policy in [MobilityPolicy::FullReallocation, MobilityPolicy::Sticky] {
        let cfg = MobilityConfig {
            scenario: ScenarioConfig::paper_defaults().with_ues(250),
            speed_mps: (5.0, 15.0),
            epoch_seconds: 10.0,
            epochs: 8,
            seed: 7,
            policy,
            stationary_fraction: 0.0,
        };
        let mono = MobilitySimulator::new(cfg.clone()).run().unwrap();
        let sim = MobilitySimulator::new(cfg).with_allocator(components_dmra());
        assert_eq!(sim.run().unwrap(), mono, "{policy:?} diverged");
        assert_eq!(
            sim.run_sharded(2, 2).unwrap(),
            mono,
            "{policy:?} sharded diverged"
        );
    }
}

/// Telemetry on/off must not perturb the component path, and the
/// decomposition counters must actually record when it runs.
#[test]
fn component_telemetry_records_without_changing_outcomes() {
    // A sparse random scenario: few BSs scattered over the paper region
    // give the decomposition counters a realistic partition to record.
    let mut cfg = ScenarioConfig::paper_defaults().with_ues(40).with_seed(11);
    cfg.n_sps = 2;
    cfg.bss_per_sp = 2;
    cfg.bs_placement = BsPlacement::UniformRandom;
    let instance = cfg.build().unwrap();
    let mono = Dmra::default().solve(&instance).unwrap();

    dmra_obs::set_enabled(true);
    let before = dmra_obs::global().counter("core.components").get();
    let comp = Dmra::default()
        .with_solve_mode(SolveMode::Components)
        .solve(&instance)
        .unwrap();
    let after = dmra_obs::global().counter("core.components").get();
    dmra_obs::set_enabled(false);

    assert_eq!(comp, mono, "telemetry changed the component outcome");
    assert!(
        after > before,
        "core.components never incremented under telemetry"
    );
    let off = Dmra::default()
        .with_solve_mode(SolveMode::Components)
        .solve(&instance)
        .unwrap();
    assert_eq!(off, mono);
}
