//! Telemetry is observe-only: enabling it must not change any result.
//!
//! These tests run with `dmra_obs::set_enabled(true)` (their own test
//! binary, so the global flag never leaks into other suites) and pin the
//! two equalities the instrumentation could most plausibly break — the
//! dense solver against its line-by-line reference, and the incremental
//! online engine against the scratch rebuild — then check that the
//! counters and trace events the instrumentation promises are actually
//! populated.

use dmra_core::{Dmra, Threads};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
use dmra_sim::{ScenarioConfig, SweepRunner};

fn instance(ues: usize, seed: u64) -> dmra_core::ProblemInstance {
    ScenarioConfig::paper_defaults()
        .with_ues(ues)
        .with_seed(seed)
        .build()
        .unwrap()
}

#[test]
fn solver_equality_holds_with_telemetry_enabled() {
    dmra_obs::set_enabled(true);
    let dmra = Dmra::default();
    for &(ues, seed) in &[(300usize, 5u64), (900, 17)] {
        let inst = instance(ues, seed);
        let fast = dmra.solve(&inst).unwrap();
        let reference = dmra.solve_reference(&inst).unwrap();
        // Full-outcome equality: allocation, rounds, proposals, and the
        // per-round acceptance/unmatched trajectories, prunes, evictions.
        assert_eq!(
            fast, reference,
            "telemetry perturbed the solver at {ues} UEs"
        );
    }
    let reg = dmra_obs::global();
    assert!(reg.counter("dmra.solves").get() >= 2);
    assert!(reg.counter("dmra.rounds").get() > 0);
    assert!(reg.counter("dmra.proposals").get() > 0);
    assert!(reg.histogram("dmra.solve_ns").count() >= 2);
}

#[test]
fn online_engines_identical_with_telemetry_enabled() {
    dmra_obs::set_enabled(true);
    let config = DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: 60.0,
        mean_holding: 4.0,
        holding: HoldingDistribution::Geometric,
        epochs: 25,
        seed: 9,
    };
    let sim = DynamicSimulator::new(config);
    let incremental = sim.run().unwrap();
    let scratch = sim.run_scratch().unwrap();
    assert_eq!(
        incremental, scratch,
        "telemetry perturbed the incremental engine"
    );
    let event = sim.run_event().unwrap();
    assert_eq!(incremental, event, "telemetry perturbed the event engine");
    let reg = dmra_obs::global();
    assert!(reg.counter("sim.epochs").get() >= 25);
    assert!(reg.counter("online.epoch_builds").get() >= 25);
    assert!(
        reg.counter("online.precull_rejected").get() > 0,
        "spatial pre-cull never rejected a candidate at paper scale"
    );
    assert!(reg.histogram("sim.epoch_ns").count() >= 25);
    assert!(reg.histogram("online.epoch_build_ns").count() >= 25);
    // The event engine mirrors the epoch set under its own names; at
    // rate 60 every epoch has arrivals, so events == builds == 25.
    assert!(reg.counter("sim.events").get() >= 25);
    assert!(reg.counter("sim.event_arrivals").get() > 0);
    assert!(reg.counter("online.event_builds").get() >= 25);
    assert!(reg.histogram("sim.event_ns").count() >= 25);
    assert!(reg.histogram("online.event_build_ns").count() >= 25);
}

#[test]
fn sweep_tables_thread_independent_with_telemetry_enabled() {
    dmra_obs::set_enabled(true);
    let points: Vec<(f64, ScenarioConfig)> = [120usize, 240]
        .iter()
        .map(|&n| (n as f64, ScenarioConfig::paper_defaults().with_ues(n)))
        .collect();
    let dmra = Dmra::default();
    let algos: Vec<&dyn dmra_core::Allocator> = vec![&dmra];
    let run = |threads: Threads| {
        SweepRunner::new(2, 42)
            .with_threads(threads)
            .run_profit("obs", "#UEs", &points, &algos)
            .unwrap()
    };
    assert_eq!(
        run(Threads::serial()),
        run(Threads::Fixed(3)),
        "telemetry perturbed the threaded sweep"
    );
    let reg = dmra_obs::global();
    assert!(
        reg.counter("sweep.cells").get() >= 8,
        "2 points x 2 reps x 2 runs"
    );
    assert!(reg.histogram("sweep.cell_ns").count() >= 8);
}

#[test]
fn trace_records_convergence_trajectory() {
    dmra_obs::set_enabled(true);
    // A UE count no other test in this binary uses, so the trace event is
    // uniquely ours even though the suites share the global trace log.
    let inst = instance(1234, 23);
    let outcome = Dmra::default().solve(&inst).unwrap();
    let events = dmra_obs::global_trace().drain();
    let solve = events
        .iter()
        .find(|e| {
            e.name == "dmra.solve" && e.fields.iter().any(|&(k, v)| k == "ues" && v == 1234.0)
        })
        .expect("a dmra.solve trace event for the 1234-UE instance");
    let field = |key: &str| {
        solve
            .fields
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap()
    };
    assert_eq!(field("rounds"), outcome.iterations as f64);
    assert!(field("proposals") >= field("accepted"));
    assert_eq!(
        field("accepted") + field("cloud"),
        1234.0,
        "every UE ends either edge-served or cloud-forwarded"
    );
}
