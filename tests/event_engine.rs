//! The event-driven dynamic engine is bit-identical to the epoch loops.
//!
//! `DynamicSimulator::run_event` replaces the per-epoch task scan with a
//! departure heap and skips idle epochs entirely, but it consumes the
//! same RNG stream and performs the same f64 arithmetic as the
//! fixed-epoch engines (DESIGN.md §11 gives the argument). These tests
//! pin the equality — identical `DynamicOutcome`s, byte for byte —
//! across allocators, seeds, arrival rates, holding distributions and
//! telemetry states, which is the acceptance bar the engine must clear
//! before any benchmark number counts.

use dmra_core::{Allocator, Dmra};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
use dmra_sim::ScenarioConfig;

fn config(rate: f64, seed: u64, epochs: usize) -> DynamicConfig {
    DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: rate,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs,
        seed,
    }
}

type Factory = fn() -> Box<dyn Allocator>;

fn allocator_grid() -> Vec<(&'static str, Factory)> {
    vec![
        ("DMRA", || Box::new(Dmra::default())),
        ("NonCo", || Box::new(dmra_baselines::NonCo::default())),
        ("GreedyProfit", || {
            Box::new(dmra_baselines::GreedyProfit::default())
        }),
    ]
}

#[test]
fn event_engine_matches_epoch_engines_across_the_grid() {
    // The ISSUE acceptance grid: every allocator × ≥2 seeds × ≥2 rates
    // under geometric holding, compared against both epoch engines.
    for (name, factory) in allocator_grid() {
        for &(rate, seed) in &[(25.0, 3u64), (140.0, 8)] {
            let sim = DynamicSimulator::with_allocator(config(rate, seed, 30), factory());
            let event = sim.run_event().unwrap();
            assert_eq!(
                event,
                sim.run().unwrap(),
                "{name} event/incremental diverged at rate {rate}, seed {seed}"
            );
            assert_eq!(
                event,
                sim.run_scratch().unwrap(),
                "{name} event/scratch diverged at rate {rate}, seed {seed}"
            );
        }
    }
}

#[test]
fn event_engine_equality_is_unaffected_by_telemetry() {
    // The same grid with the global telemetry flag on, then off again —
    // sequentially inside one test, since the flag is process-global to
    // this binary. Instrumentation must be observe-only in both engines.
    dmra_obs::set_enabled(true);
    for (name, factory) in allocator_grid() {
        for &(rate, seed) in &[(25.0, 3u64), (140.0, 8)] {
            let sim = DynamicSimulator::with_allocator(config(rate, seed, 20), factory());
            assert_eq!(
                sim.run_event().unwrap(),
                sim.run().unwrap(),
                "{name} diverged with telemetry on at rate {rate}, seed {seed}"
            );
        }
    }
    dmra_obs::set_enabled(false);
    let sim = DynamicSimulator::new(config(25.0, 3, 20));
    assert_eq!(
        sim.run_event().unwrap(),
        sim.run().unwrap(),
        "diverged after telemetry was switched off again"
    );
}

#[test]
fn event_engine_matches_under_every_holding_distribution() {
    for dist in [
        HoldingDistribution::Geometric,
        HoldingDistribution::Deterministic,
        HoldingDistribution::Exponential,
    ] {
        for &(rate, seed) in &[(20.0, 5u64), (120.0, 12)] {
            let mut cfg = config(rate, seed, 25);
            cfg.holding = dist;
            let sim = DynamicSimulator::new(cfg);
            let event = sim.run_event().unwrap();
            assert_eq!(
                event,
                sim.run().unwrap(),
                "{dist} diverged at rate {rate}, seed {seed}"
            );
            assert_eq!(
                event,
                sim.run_scratch().unwrap(),
                "{dist} scratch diverged at rate {rate}, seed {seed}"
            );
        }
    }
}

#[test]
fn event_engine_matches_on_a_low_load_long_horizon() {
    // The regime the engine exists for: rate ≤ 2 over 10k epochs leaves
    // most epochs idle. Outcomes must still match the epoch loop exactly
    // (the wall-clock claim lives in BENCH_dynamic_event.json).
    let sim = DynamicSimulator::new(config(0.5, 7, 10_000));
    let event = sim.run_event().unwrap();
    let incremental = sim.run().unwrap();
    assert_eq!(event, incremental, "low-load long-horizon runs diverged");
    assert_eq!(event.rrb_occupancy.len(), 10_000);
    // Sanity: the workload really is sparse — far fewer arrival events
    // than epochs, so the O(events) claim has teeth.
    assert!(
        event.arrivals < 6_000,
        "expected a sparse trace, got {} arrivals",
        event.arrivals
    );
}

#[test]
fn event_engine_conserves_tasks() {
    for &(rate, seed) in &[(2.0, 1u64), (60.0, 2)] {
        let out = DynamicSimulator::new(config(rate, seed, 200))
            .run_event()
            .unwrap();
        assert_eq!(out.arrivals, out.admitted + out.cloud_forwarded);
        let in_service_end = *out.in_service.last().unwrap() as u64;
        assert_eq!(out.admitted, out.completed + in_service_end);
    }
}
