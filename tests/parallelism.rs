//! Bit-identical parallel execution.
//!
//! The fan-out layer (`dmra-par`) only ever reorders *work*, never
//! results: sweep grid cells derive independent seeds and per-UE candidate
//! rows are pure functions of the instance inputs, so every thread count
//! must produce exactly the same bytes. These tests pin that guarantee at
//! paper scale, for the thread counts a laptop and a CI runner would use.

use dmra_core::{Allocator, Dmra, Threads};
use dmra_radio::InterferenceModel;
use dmra_sim::{ScenarioConfig, SweepRunner};
use dmra_types::{BsId, UeId};

fn points(ue_counts: &[usize]) -> Vec<(f64, ScenarioConfig)> {
    ue_counts
        .iter()
        .map(|&n| (n as f64, ScenarioConfig::paper_defaults().with_ues(n)))
        .collect()
}

#[test]
fn parallel_sweep_tables_are_bit_identical_to_serial() {
    let points = points(&[150, 300]);
    let dmra = Dmra::default();
    let nonco = dmra_baselines::NonCo::default();
    let algos: Vec<&dyn Allocator> = vec![&dmra, &nonco];
    let runner = SweepRunner::new(3, 42);
    let serial = runner
        .with_threads(Threads::serial())
        .run_profit("t", "#UEs", &points, &algos)
        .unwrap();
    for threads in [2usize, 4, 7] {
        let par = runner
            .with_threads(Threads::Fixed(threads))
            .run_profit("t", "#UEs", &points, &algos)
            .unwrap();
        assert_eq!(par, serial, "table diverged at {threads} threads");
    }
}

#[test]
fn parallel_sweep_matches_serial_for_custom_metrics_too() {
    // A different metric closure (forwarded load) and a different grid
    // shape, to make sure the equality is not specific to run_profit.
    let points = points(&[200]);
    let dmra = Dmra::default();
    let algos: Vec<&dyn Allocator> = vec![&dmra];
    let runner = SweepRunner::new(4, 7);
    let serial = runner
        .with_threads(Threads::serial())
        .run_forwarded_load("t", "#UEs", &points, &algos)
        .unwrap();
    let par = runner
        .with_threads(Threads::Fixed(3))
        .run_forwarded_load("t", "#UEs", &points, &algos)
        .unwrap();
    assert_eq!(par, serial);
}

#[test]
fn parallel_instance_build_is_bit_identical() {
    // Interference on, so the parallel per-BS aggregate-power pass is
    // exercised alongside the per-UE candidate rows.
    let mut cfg = ScenarioConfig::paper_defaults().with_ues(700).with_seed(9);
    cfg.radio.interference = InterferenceModel::LoadProportional { factor: 0.01 };
    let serial = cfg.build_with_threads(Threads::serial()).unwrap();
    for threads in [2usize, 5] {
        let par = cfg.build_with_threads(Threads::Fixed(threads)).unwrap();
        for u in 0..serial.n_ues() {
            let ue = UeId::new(u as u32);
            assert_eq!(
                serial.candidates(ue),
                par.candidates(ue),
                "candidates of {ue} diverged at {threads} threads"
            );
            assert_eq!(serial.f_u(ue), par.f_u(ue));
        }
        for b in 0..serial.n_bss() {
            let bs = BsId::new(b as u32);
            assert_eq!(
                serial.covered_ues(bs),
                par.covered_ues(bs),
                "covered_ues of {bs} diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn dense_solver_matches_reference_at_paper_scale() {
    // The dense-state rewrite of Algorithm 1 must reproduce the full
    // outcome (allocation, iterations, proposals, acceptance timeline) of
    // the line-by-line transcription it replaced.
    for (n_ues, seed, rho) in [(400usize, 1u64, 100.0), (900, 5, 0.0), (900, 5, 1000.0)] {
        let instance = ScenarioConfig::paper_defaults()
            .with_ues(n_ues)
            .with_seed(seed)
            .build()
            .unwrap();
        let dmra = Dmra::new(dmra_core::DmraConfig::paper_defaults().with_rho(rho));
        let fast = dmra.solve(&instance).unwrap();
        let reference = dmra.solve_reference(&instance).unwrap();
        assert_eq!(fast, reference, "n_ues={n_ues} seed={seed} rho={rho}");
    }
}

#[test]
fn dmra_threads_env_is_honored_by_auto() {
    // Benign to run alongside the other tests: the knob only moves work
    // across threads, never results.
    std::env::set_var("DMRA_THREADS", "3");
    assert_eq!(Threads::Auto.resolve(), 3);
    std::env::set_var("DMRA_THREADS", "not-a-number");
    assert!(Threads::Auto.resolve() >= 1, "garbage falls back to auto");
    std::env::remove_var("DMRA_THREADS");
    assert!(Threads::Auto.resolve() >= 1);
}
