//! Workspace-level property tests: random scenarios, every invariant.

use dmra::prelude::*;
use dmra::sim::BsPlacement;
use dmra_core::DmraConfig;
use proptest::prelude::*;

/// A generator of small but structurally diverse scenarios.
fn arb_scenario() -> impl Strategy<Value = ScenarioConfig> {
    (
        1u32..4,         // n_sps
        1u32..4,         // bss_per_sp
        1u32..5,         // n_services
        1usize..120,     // n_ues
        prop::bool::ANY, // random placement
        // Constraint (16) with b = 2 and m_k − m_k^o = 7 requires
        // ι·b + d^σ·b < 7, i.e. ι < ~2.4 at the largest region distances.
        1.05f64..2.2, // iota
        0u64..1000,   // seed
    )
        .prop_map(
            |(n_sps, bss_per_sp, n_services, n_ues, random, iota, seed)| {
                let mut cfg = ScenarioConfig::paper_defaults()
                    .with_iota(iota)
                    .with_ues(n_ues)
                    .with_seed(seed);
                cfg.n_sps = n_sps;
                cfg.bss_per_sp = bss_per_sp;
                cfg.n_services = n_services;
                cfg.bs_placement = if random {
                    BsPlacement::UniformRandom
                } else {
                    // Keep the grid consistent with the BS count.
                    BsPlacement::RegularGrid {
                        rows: n_sps,
                        cols: bss_per_sp,
                        isd: Meters::new(300.0),
                    }
                };
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_all_algorithms_valid_on_random_scenarios(cfg in arb_scenario()) {
        let instance = cfg.build().unwrap();
        let algos: Vec<Box<dyn Allocator>> = vec![
            Box::new(Dmra::default()),
            Box::new(Dcsp::default()),
            Box::new(NonCo::default()),
            Box::new(GreedyProfit::default()),
            Box::new(RandomAllocator::new(cfg.seed)),
        ];
        for algo in algos {
            let allocation = algo.allocate(&instance);
            prop_assert!(allocation.validate(&instance).is_ok(), "{} invalid", algo.name());
            let profit = instance.total_profit(&allocation);
            prop_assert!(profit.get() >= -1e-9, "{} negative profit", algo.name());
        }
    }

    #[test]
    fn prop_dmra_terminates_within_bound(cfg in arb_scenario()) {
        let instance = cfg.build().unwrap();
        let out = Dmra::default().solve(&instance).unwrap();
        prop_assert!(out.iterations <= instance.n_ues() + 1);
    }

    #[test]
    fn prop_every_served_ue_is_a_candidate_with_capacity(cfg in arb_scenario()) {
        let instance = cfg.build().unwrap();
        let allocation = Dmra::default().allocate(&instance);
        for (ue, bs) in allocation.edge_pairs() {
            let link = instance.link(ue, bs);
            prop_assert!(link.is_some(), "{ue} served by non-candidate {bs}");
        }
        // Cloud UEs must be genuinely unservable *or* displaced by load:
        // if the network is idle (few UEs), nobody with candidates goes
        // to the cloud.
        if instance.n_ues() <= 5 {
            for ue in allocation.cloud_ues() {
                prop_assert_eq!(
                    instance.f_u(ue), 0,
                    "idle network must serve every coverable UE"
                );
            }
        }
    }

    #[test]
    fn prop_profit_matches_manual_recomputation(cfg in arb_scenario()) {
        let instance = cfg.build().unwrap();
        let allocation = Dmra::default().allocate(&instance);
        // Recompute Eq. (5)–(8) by hand from the public API.
        let mut expected = 0.0;
        for ue in instance.ues() {
            if let Some(bs) = allocation.bs_of(ue.id) {
                let sp = &instance.sps()[ue.sp.as_usize()];
                let link = instance.link(ue.id, bs).unwrap();
                expected += ue.cru_demand.as_f64()
                    * (sp.cru_price.get() - sp.other_cost.get() - link.price.get());
            }
        }
        let reported = instance.total_profit(&allocation).get();
        prop_assert!((reported - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    #[test]
    fn prop_rho_zero_is_pure_price_preference(cfg in arb_scenario()) {
        // With rho = 0 and no ties, each UE's first proposal goes to its
        // cheapest candidate; we verify the weaker invariant that the
        // allocation only improves or keeps profit when the same-SP
        // preference is enabled on top (at iota high enough to matter the
        // effect is usually positive, but never catastrophically negative).
        let instance = cfg.build().unwrap();
        let with_pref = Dmra::new(DmraConfig::paper_defaults().with_rho(0.0));
        let allocation = with_pref.allocate(&instance);
        prop_assert!(allocation.validate(&instance).is_ok());
    }

    #[test]
    fn prop_forwarded_load_is_cloud_demand(cfg in arb_scenario()) {
        let instance = cfg.build().unwrap();
        let allocation = NonCo::default().allocate(&instance);
        let expected: f64 = allocation
            .cloud_ues()
            .map(|u| instance.ues()[u.as_usize()].rate_demand.to_mbps())
            .sum();
        let reported = instance.forwarded_load(&allocation).to_mbps();
        prop_assert!((reported - expected).abs() < 1e-9 * (1.0 + expected));
    }
}

/// Non-wastefulness: DMRA never strands a UE in the cloud while one of its
/// candidate BSs retains enough CRUs *and* RRBs to serve it. (Candidates
/// are pruned only on observed incapacity, and resources never grow, so a
/// pruned BS stays infeasible; this test pins that reasoning.)
#[test]
fn dmra_never_strands_serveable_ues() {
    for seed in 0..8u64 {
        let instance = ScenarioConfig::paper_defaults()
            .with_ues(800)
            .with_seed(seed)
            .build()
            .unwrap();
        let allocation = Dmra::default().allocate(&instance);
        let rem_cru = instance.remaining_cru(&allocation);
        let rem_rrb = instance.remaining_rrbs(&allocation);
        for ue in allocation.cloud_ues() {
            let spec = &instance.ues()[ue.as_usize()];
            for link in instance.candidates(ue) {
                let i = link.bs.as_usize();
                let fits = rem_cru[i][spec.service.as_usize()] >= spec.cru_demand
                    && rem_rrb[i] >= link.n_rrbs;
                assert!(
                    !fits,
                    "seed {seed}: {ue} went to the cloud but {} still fits it",
                    link.bs
                );
            }
        }
    }
}

/// The same non-wastefulness property holds for the deferred-acceptance
/// baselines (they share the prune-on-incapacity structure).
#[test]
fn baselines_never_strand_serveable_ues() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(800)
        .with_seed(3)
        .build()
        .unwrap();
    let algos: Vec<Box<dyn Allocator>> =
        vec![Box::new(Dcsp::default()), Box::new(NonCo::default())];
    for algo in algos {
        let allocation = algo.allocate(&instance);
        let rem_cru = instance.remaining_cru(&allocation);
        let rem_rrb = instance.remaining_rrbs(&allocation);
        for ue in allocation.cloud_ues() {
            let spec = &instance.ues()[ue.as_usize()];
            for link in instance.candidates(ue) {
                let i = link.bs.as_usize();
                let fits = rem_cru[i][spec.service.as_usize()] >= spec.cru_demand
                    && rem_rrb[i] >= link.n_rrbs;
                assert!(!fits, "{}: {ue} stranded with capacity left", algo.name());
            }
        }
    }
}
