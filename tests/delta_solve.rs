//! The cross-epoch delta solver is bit-identical to the scratch engines.
//!
//! `--solve delta` (DESIGN.md §17) replays cached per-component matchings
//! for components whose member rows and consulted-BS budgets are
//! bit-unchanged since their last solve. These tests pin the soundness
//! end to end:
//!
//! * a 2000-epoch mobility soak compares the delta path against the
//!   rebuild-from-scratch executable specification across seeds,
//!   allocators (DMRA and the NonCo/GreedyProfit baselines, which ignore
//!   the delta metadata but ride the same cached epoch instances) and
//!   telemetry on/off — outcomes and recorder det-projections (which
//!   embed every epoch's allocation digest) must be byte-identical;
//! * an adversarial churn test re-arrives the same UE id with a
//!   different demand — the row cache must report it dirty and the delta
//!   session must re-solve its component instead of replaying;
//! * the bounded row cache keeps its occupancy under the configured
//!   capacity, counts LRU evictions, and stays bit-identical;
//! * the region-sharded mobility engine's dirty-set translation
//!   ([`DeltaTracker`] in `dmra-sim`) and the dynamic engines all agree
//!   with the unsharded/scratch runs under the delta mode.
//!
//! Every test in this binary pins the process-global solve-mode default
//! to `Delta` (same value everywhere, so parallel test threads never
//! race it to different modes), and the scratch side overrides its own
//! allocator to `Monolithic` where a DMRA reference is wanted.

use dmra::obs::{det_projection, Recorder, SharedBuf};
use dmra::prelude::*;
use dmra_core::{set_solve_mode_default, CoverageModel, DeploymentContext, ProblemInstance};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution, ProtoFaults};
use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
use dmra_types::UeSpec;
use std::sync::Arc;

/// A 3×3 grid of *disjoint* coverage islands (inter-site distance 900 m,
/// radius 220 m) in a 3 km × 3 km region: instances decompose into up to
/// nine components plus a large cloud-only set, so the delta solver has
/// real component structure to replay — unlike the paper's dense default
/// grid, which collapses to one component.
fn islands(seed: u64, n_ues: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_defaults()
        .with_ues(n_ues)
        .with_seed(seed)
        .with_bs_placement(BsPlacement::RegularGrid {
            rows: 3,
            cols: 3,
            isd: Meters::new(900.0),
        });
    cfg.n_sps = 3;
    cfg.bss_per_sp = 3;
    cfg.region = Rect {
        min: Point::new(0.0, 0.0),
        max: Point::new(3000.0, 3000.0),
    };
    cfg.coverage = CoverageModel::FixedRadius(Meters::new(220.0));
    cfg
}

fn full_budgets(deployment: &ProblemInstance) -> (Vec<Vec<Cru>>, Vec<RrbCount>) {
    (
        deployment
            .bss()
            .iter()
            .map(|b| b.cru_budget.clone())
            .collect(),
        deployment.bss().iter().map(|b| b.rrb_budget).collect(),
    )
}

fn mob_config(seed: u64, n_ues: usize, epochs: usize, stationary: f64) -> MobilityConfig {
    MobilityConfig {
        scenario: islands(seed, n_ues),
        speed_mps: (5.0, 15.0),
        epoch_seconds: 10.0,
        epochs,
        seed,
        policy: MobilityPolicy::FullReallocation,
        stationary_fraction: stationary,
    }
}

/// Records one mobility run into an in-memory buffer; returns the
/// outcome and the full JSONL flight-record document.
fn record_mobility(
    cfg: MobilityConfig,
    allocator: Box<dyn Allocator>,
    scratch: bool,
) -> (dmra_sim::mobility::MobilityOutcome, String) {
    let buf = SharedBuf::new();
    let recorder = Arc::new(Recorder::to_writer(Box::new(buf.clone()), 1));
    let sim = MobilitySimulator::new(cfg)
        .with_allocator(allocator)
        .with_observer(recorder.clone());
    let outcome = if scratch {
        sim.run_scratch().unwrap()
    } else {
        sim.run().unwrap()
    };
    assert!(recorder.finish(), "in-memory recorder cannot fail");
    (outcome, buf.contents())
}

/// The 2000-epoch soak of the issue: `--solve delta` on the incremental
/// engine against the exhaustive-scan scratch specification, 3 seeds ×
/// {DMRA, NonCo, GreedyProfit} × telemetry {off, on}. Outcomes and
/// det-projections (including per-epoch allocation digests) must match
/// byte for byte. The telemetry-on DMRA arm additionally asserts that
/// the delta solver really replayed components (the hit counter moved) —
/// with 90% of the population pinned, most islands are clean most
/// epochs.
#[test]
fn soak_delta_matches_scratch_across_allocators_seeds_and_telemetry() {
    set_solve_mode_default(SolveMode::Delta);
    type Mk = fn() -> Box<dyn Allocator>;
    let allocators: [(&str, Mk, Mk); 3] = [
        (
            "Dmra",
            || Box::new(Dmra::default()),
            || Box::new(Dmra::default().with_solve_mode(SolveMode::Monolithic)),
        ),
        (
            "NonCo",
            || Box::new(NonCo::default()),
            || Box::new(NonCo::default()),
        ),
        (
            "GreedyProfit",
            || Box::new(GreedyProfit::default()),
            || Box::new(GreedyProfit::default()),
        ),
    ];
    let hit_counter = dmra::obs::global().counter("core.delta_component_hits");
    for (name, delta_alloc, scratch_alloc) in allocators {
        for seed in [3u64, 8, 21] {
            for telemetry in [false, true] {
                dmra::obs::set_enabled(telemetry);
                let cfg = mob_config(seed, 60, 2000, 0.9);
                let hits_before = hit_counter.get();
                let (delta_out, delta_doc) = record_mobility(cfg.clone(), delta_alloc(), false);
                if name == "Dmra" && telemetry {
                    assert!(
                        hit_counter.get() > hits_before,
                        "delta solver never replayed a component (seed {seed})"
                    );
                }
                let (scratch_out, scratch_doc) = record_mobility(cfg, scratch_alloc(), true);
                assert_eq!(
                    delta_out, scratch_out,
                    "{name} diverged at seed {seed}, telemetry {telemetry}"
                );
                assert_eq!(
                    det_projection(&delta_doc),
                    det_projection(&scratch_doc),
                    "{name} det-projection diverged at seed {seed}, telemetry {telemetry}"
                );
            }
        }
    }
    dmra::obs::set_enabled(false);
}

/// Adversarial churn: the same UE id re-arriving with a *different*
/// demand must dirty its component. The delta session's output is
/// compared against a fresh monolithic solve of the same instance — a
/// stale replay of the previous epoch's matching would surface here.
#[test]
fn rearriving_ue_with_different_demand_dirties_its_component() {
    set_solve_mode_default(SolveMode::Delta);
    let deployment = islands(5, 0).build().unwrap();
    let (full_cru, full_rrb) = full_budgets(&deployment);
    let batch: Vec<UeSpec> = islands(5, 40).build().unwrap().ues().to_vec();
    let mut ctx = DeploymentContext::new(&deployment).with_row_cache();
    let dmra = Dmra::default();
    let mut session = dmra.session();
    let mono = Dmra::default().with_solve_mode(SolveMode::Monolithic);

    // Epoch 0: whole batch is new ground.
    let inst = ctx
        .epoch_instance(&full_cru, &full_rrb, batch.clone())
        .unwrap();
    let k = (0..inst.n_ues())
        .find(|&u| !inst.candidates(UeId::new(u as u32)).is_empty())
        .expect("some UE lands inside an island") as u32;
    assert_eq!(session.allocate(inst), mono.allocate(inst));

    // Epoch 1: identical batch — nothing dirty, everything replayed.
    let inst = ctx
        .epoch_instance(&full_cru, &full_rrb, batch.clone())
        .unwrap();
    let delta = inst.delta().expect("row-cached context reports churn");
    assert!(
        delta.dirty_ues.is_empty(),
        "identical batch reported dirty UEs {:?}",
        delta.dirty_ues
    );
    assert_eq!(session.allocate(inst), mono.allocate(inst));

    // Epoch 2: UE `k` re-arrives with a different CRU demand. Its slot
    // must be reported dirty and its component re-solved.
    let mut churned = batch;
    churned[k as usize].cru_demand = Cru::new(churned[k as usize].cru_demand.get() + 1);
    let inst = ctx.epoch_instance(&full_cru, &full_rrb, churned).unwrap();
    let delta = inst.delta().expect("row-cached context reports churn");
    assert!(
        delta.dirty_ues.contains(&k),
        "changed demand of UE {k} not reported dirty (dirty set {:?})",
        delta.dirty_ues
    );
    assert_eq!(session.allocate(inst), mono.allocate(inst));
}

/// The bounded row cache (satellite of the delta issue): occupancy never
/// exceeds the configured capacity after a rebuild, LRU evictions are
/// counted, surviving slots keep hitting, and the built instance stays
/// bit-identical to the from-scratch residual at every capacity.
#[test]
fn row_cache_capacity_bounds_occupancy_and_counts_evictions() {
    let deployment = islands(7, 0).build().unwrap();
    let (full_cru, full_rrb) = full_budgets(&deployment);
    let batch: Vec<UeSpec> = islands(7, 8).build().unwrap().ues().to_vec();
    let mut ctx = DeploymentContext::new(&deployment).with_row_cache_capacity(4);
    for _epoch in 0..4 {
        let scratch = deployment
            .residual(&full_cru, &full_rrb, batch.clone())
            .unwrap();
        let inst = ctx
            .epoch_instance(&full_cru, &full_rrb, batch.clone())
            .unwrap();
        for u in 0..inst.n_ues() {
            let ue = UeId::new(u as u32);
            assert_eq!(
                inst.candidates(ue),
                scratch.candidates(ue),
                "UE {u} row diverged under eviction pressure"
            );
        }
        assert!(
            ctx.row_cache_occupied().unwrap() <= 4,
            "occupancy {} exceeds capacity 4",
            ctx.row_cache_occupied().unwrap()
        );
    }
    // 8-UE batches against 4 slots: every epoch evicts, yet the
    // surviving slots keep hitting.
    assert!(
        ctx.row_cache_evictions().unwrap() > 0,
        "no evictions counted"
    );
    let (hits, _misses) = ctx.row_cache_stats().unwrap();
    assert!(hits > 0, "eviction pressure wiped out every hit");
}

/// The region-sharded mobility engine under the delta mode: the
/// coordinator translates per-shard dirty sets into global ones
/// (falling back to fully-dirty on any re-route), so every shard count
/// must agree with the unsharded incremental engine and the scratch
/// specification — for both policies, with movers crossing seams.
#[test]
fn sharded_mobility_under_delta_matches_unsharded_and_scratch() {
    set_solve_mode_default(SolveMode::Delta);
    for policy in [MobilityPolicy::FullReallocation, MobilityPolicy::Sticky] {
        let mut cfg = mob_config(11, 120, 12, 0.6);
        cfg.speed_mps = (8.0, 16.0);
        cfg.policy = policy;
        let sim = MobilitySimulator::new(cfg);
        let unsharded = sim.run().unwrap();
        assert_eq!(
            sim.run_scratch().unwrap(),
            unsharded,
            "scratch diverged under {policy:?}"
        );
        for shards in [2usize, 4] {
            assert_eq!(
                sim.run_sharded_n(shards).unwrap(),
                unsharded,
                "{shards} shards diverged under {policy:?}"
            );
        }
    }
}

/// Every dynamic engine under the delta mode: incremental, event-driven,
/// region-sharded (which stages no deltas — the solver fails closed into
/// the component path) and the fault-free message-passing protocol all
/// match the scratch loop with a monolithic reference allocator.
#[test]
fn dynamic_engines_are_bit_identical_under_delta() {
    set_solve_mode_default(SolveMode::Delta);
    for &(rate, seed) in &[(12.0, 3u64), (60.0, 8)] {
        let cfg = DynamicConfig {
            scenario: islands(seed, 0),
            arrival_rate: rate,
            mean_holding: 5.0,
            holding: HoldingDistribution::Geometric,
            epochs: 15,
            seed,
        };
        let mono = DynamicSimulator::with_allocator(
            cfg.clone(),
            Box::new(Dmra::default().with_solve_mode(SolveMode::Monolithic)),
        )
        .run_scratch()
        .unwrap();
        let sim = DynamicSimulator::new(cfg);
        assert_eq!(
            sim.run().unwrap(),
            mono,
            "incremental diverged (rate {rate})"
        );
        assert_eq!(
            sim.run_event().unwrap(),
            mono,
            "event diverged (rate {rate})"
        );
        assert_eq!(
            sim.run_sharded_n(4).unwrap(),
            mono,
            "sharded diverged (rate {rate})"
        );
        assert_eq!(
            sim.run_proto(&ProtoFaults::default()).unwrap(),
            mono,
            "fault-free proto diverged (rate {rate})"
        );
    }
}
