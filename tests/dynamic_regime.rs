//! Workspace-level tests of the online (arrival/departure) regime.

use dmra::prelude::*;
use dmra::sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};

fn config(rate: f64, epochs: usize, seed: u64) -> DynamicConfig {
    DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: rate,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs,
        seed,
    }
}

#[test]
fn admission_ratio_decreases_with_offered_load() {
    let mut previous = f64::INFINITY;
    for rate in [20.0, 100.0, 300.0, 600.0] {
        let out = DynamicSimulator::new(config(rate, 60, 3)).run().unwrap();
        let ratio = out.admission_ratio();
        assert!(
            ratio <= previous + 0.02,
            "admission ratio rose with load: {ratio} after {previous} at rate {rate}"
        );
        previous = ratio;
    }
    // At 600 arrivals/epoch × 5 epochs holding the network is far beyond
    // capacity; blocking must be severe.
    assert!(previous < 0.6, "expected heavy blocking, got {previous}");
}

#[test]
fn occupancy_stays_within_physical_bounds() {
    let out = DynamicSimulator::new(config(500.0, 80, 5)).run().unwrap();
    for (epoch, &occ) in out.rrb_occupancy.iter().enumerate() {
        assert!(
            (0.0..=1.0 + 1e-9).contains(&occ),
            "occupancy {occ} out of bounds at epoch {epoch}"
        );
    }
    // Saturating load should push steady-state occupancy high.
    assert!(out.steady_state_occupancy() > 0.7);
}

#[test]
fn long_run_reaches_a_steady_state() {
    let out = DynamicSimulator::new(config(100.0, 120, 7)).run().unwrap();
    // Offered load ≈ 100 × 5 = 500 concurrent vs capacity ≈ 880: the
    // in-service count should stabilise near the offered load rather than
    // drift (Little's law sanity check, ±25%).
    let tail = &out.in_service[out.in_service.len() / 2..];
    let mean = tail.iter().sum::<usize>() as f64 / tail.len() as f64;
    assert!(
        (375.0..=625.0).contains(&mean),
        "steady-state in-service {mean} far from Little's-law estimate 500"
    );
}

#[test]
fn zero_epochs_is_a_clean_noop() {
    let out = DynamicSimulator::new(config(50.0, 0, 1)).run().unwrap();
    assert_eq!(out.arrivals, 0);
    assert_eq!(out.total_profit.get(), 0.0);
    assert!(out.rrb_occupancy.is_empty());
}

#[test]
fn profit_rate_grows_with_served_tasks() {
    let light = DynamicSimulator::new(config(20.0, 60, 9)).run().unwrap();
    let medium = DynamicSimulator::new(config(80.0, 60, 9)).run().unwrap();
    assert!(medium.admitted > light.admitted);
    assert!(medium.total_profit > light.total_profit);
}
