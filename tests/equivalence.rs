//! Centralized ↔ decentralized equivalence and fault-tolerance guarantees
//! of the DMRA protocol, at paper scale.

use dmra::prelude::*;
use dmra::proto::DropPolicy;
use dmra_core::agents::run_decentralized;
use dmra_core::DmraConfig;

#[test]
fn decentralized_equals_centralized_at_paper_scale() {
    for (n_ues, seed) in [(100usize, 1u64), (400, 2), (700, 3)] {
        let instance = ScenarioConfig::paper_defaults()
            .with_ues(n_ues)
            .with_seed(seed)
            .build()
            .unwrap();
        let config = DmraConfig::paper_defaults();
        let central = Dmra::new(config).allocate(&instance);
        let out = run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000).unwrap();
        assert_eq!(
            out.allocation, central,
            "divergence at n_ues={n_ues} seed={seed}"
        );
        assert_eq!(out.conflicting_accepts, 0);
    }
}

#[test]
fn decentralized_equivalence_holds_across_configs() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(300)
        .with_iota(1.1)
        .with_random_placement()
        .with_seed(11)
        .build()
        .unwrap();
    for rho in [0.0, 50.0, 400.0] {
        for same_sp in [true, false] {
            let config = DmraConfig {
                rho,
                same_sp_preference: same_sp,
                ..DmraConfig::paper_defaults()
            };
            let central = Dmra::new(config).allocate(&instance);
            let out =
                run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000).unwrap();
            assert_eq!(
                out.allocation, central,
                "divergence at rho={rho} same_sp={same_sp}"
            );
        }
    }
}

#[test]
fn protocol_message_counts_scale_sanely() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(200)
        .with_seed(5)
        .build()
        .unwrap();
    let config = DmraConfig::paper_defaults();
    let out = run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000).unwrap();
    // One accept per edge-served UE.
    let served = out.allocation.edge_served() as u64;
    assert_eq!(out.stats.by_kind.get("accept"), Some(&served));
    // Each UE sends at least one service request (unless it has no
    // candidates at all) and the totals stay polynomial, not explosive.
    let requests = out.stats.by_kind["service-request"];
    assert!(requests >= served);
    assert!(
        requests <= (instance.n_ues() * instance.n_bss()) as u64,
        "requests {requests} exceed |U|·|B|"
    );
    // Quiescence happened well within the bound.
    assert!(out.stats.rounds < 200, "rounds = {}", out.stats.rounds);
}

#[test]
fn lossy_channels_never_violate_constraints() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(300)
        .with_seed(13)
        .build()
        .unwrap();
    let config = DmraConfig::paper_defaults();
    for drop_rate in [0.05, 0.15, 0.35] {
        for seed in 0..5u64 {
            let out = run_decentralized(
                &instance,
                &config,
                DropPolicy::new(drop_rate, seed),
                100_000,
            )
            .unwrap();
            out.allocation
                .validate(&instance)
                .unwrap_or_else(|e| panic!("drop={drop_rate} seed={seed}: {e}"));
        }
    }
}

#[test]
fn lossy_channels_recover_most_assignments() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(300)
        .with_seed(17)
        .build()
        .unwrap();
    let config = DmraConfig::paper_defaults();
    let reliable = run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000).unwrap();
    let baseline = reliable.allocation.edge_served();
    let out = run_decentralized(&instance, &config, DropPolicy::new(0.10, 7), 100_000).unwrap();
    let lossy = out.allocation.edge_served();
    assert!(
        lossy as f64 >= 0.9 * baseline as f64,
        "10% loss should cost <10% of assignments: {lossy} vs {baseline}"
    );
}

#[test]
fn delayed_channels_at_paper_scale_stay_safe_and_serve() {
    use dmra::proto::DelayModel;
    use dmra_core::agents::run_decentralized_with;

    let instance = ScenarioConfig::paper_defaults()
        .with_ues(300)
        .with_seed(23)
        .build()
        .unwrap();
    let config = DmraConfig::paper_defaults();
    let reliable = run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000).unwrap();
    for delay in [
        DelayModel::Fixed { extra: 2 },
        DelayModel::Random {
            max_extra: 3,
            seed: 5,
        },
    ] {
        let out =
            run_decentralized_with(&instance, &config, DropPolicy::reliable(), delay, 200_000)
                .unwrap();
        out.allocation.validate(&instance).unwrap();
        // Latency slows convergence but must not destroy coverage.
        assert!(
            out.allocation.edge_served() as f64 >= 0.9 * reliable.allocation.edge_served() as f64,
            "served {} vs reliable {}",
            out.allocation.edge_served(),
            reliable.allocation.edge_served()
        );
        assert!(out.stats.rounds > reliable.stats.rounds);
    }
}

#[test]
fn crashed_bss_at_paper_scale_route_around() {
    use dmra_core::agents::{run_protocol, ProtocolOptions};

    let instance = ScenarioConfig::paper_defaults()
        .with_ues(300)
        .with_seed(31)
        .build()
        .unwrap();
    let config = DmraConfig::paper_defaults();
    let healthy = run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000)
        .unwrap()
        .allocation
        .edge_served();
    // Kill three of the 25 BSs before the first round.
    let dead = [BsId::new(3), BsId::new(12), BsId::new(20)];
    let out = run_protocol(
        &instance,
        &config,
        ProtocolOptions {
            crashed_bss: dead.iter().map(|&b| (b, 0)).collect(),
            ..ProtocolOptions::default()
        },
    )
    .unwrap();
    out.allocation.validate(&instance).unwrap();
    for (_, bs) in out.allocation.edge_pairs() {
        assert!(!dead.contains(&bs), "UE served by crashed {bs}");
    }
    // Losing 12% of the BSs costs capacity, not the protocol: the healthy
    // neighbours absorb most of the displaced load.
    assert!(
        out.allocation.edge_served() as f64 >= 0.8 * healthy as f64,
        "served {} vs healthy {healthy}",
        out.allocation.edge_served()
    );
}
