//! Flight-recorder determinism: the deterministic-field projection of a
//! `--record` JSONL stream is byte-identical across engines, thread
//! counts and decimation settings.
//!
//! Every engine builds its `det` section through one shared helper per
//! stream (DESIGN.md §15), so the incremental, event-driven and
//! region-sharded dynamic engines — and the mobility engines — must
//! produce the same `det` bytes for the same configuration; only the
//! `aux` section (wall times, cache deltas, shard loads) may differ.
//! These tests attach per-instance recorders via `with_observer`
//! (leaving the process-wide observer slot alone, so they are safe to
//! run in parallel with everything else) and byte-compare
//! [`dmra::obs::det_projection`]s.

use dmra::obs::{det_projection, Recorder, SharedBuf};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution, ProtoFaults};
use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
use dmra_sim::ScenarioConfig;
use std::sync::Arc;

fn dyn_config() -> DynamicConfig {
    DynamicConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(200),
        arrival_rate: 25.0,
        mean_holding: 4.0,
        holding: HoldingDistribution::Geometric,
        epochs: 12,
        seed: 7,
    }
}

fn mob_config() -> MobilityConfig {
    MobilityConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(120),
        speed_mps: (8.0, 16.0),
        epoch_seconds: 10.0,
        epochs: 8,
        seed: 9,
        policy: MobilityPolicy::Sticky,
        stationary_fraction: 0.4,
    }
}

/// Records one dynamic run of `config` through `engine` into an
/// in-memory buffer and returns the full JSONL document.
fn record_dynamic_with(
    config: DynamicConfig,
    engine: &str,
    shards: usize,
    sample_every: u64,
) -> String {
    let buf = SharedBuf::new();
    let recorder = Arc::new(Recorder::to_writer(Box::new(buf.clone()), sample_every));
    let sim = DynamicSimulator::new(config).with_observer(recorder.clone());
    match engine {
        "incremental" => sim.run().unwrap(),
        "event" => sim.run_event().unwrap(),
        "sharded" => sim.run_sharded_n(shards).unwrap(),
        "scratch" => sim.run_scratch().unwrap(),
        // Fault-free message-passing protocol: per-round flight records go
        // only through the process-global slot, so this instance-attached
        // stream stays line-for-line comparable with the other engines.
        "proto" => sim.run_proto(&ProtoFaults::default()).unwrap(),
        other => panic!("unknown engine {other}"),
    };
    assert!(recorder.finish(), "in-memory recorder cannot fail");
    buf.contents()
}

/// [`record_dynamic_with`] on the default [`dyn_config`].
fn record_dynamic(engine: &str, shards: usize, sample_every: u64) -> String {
    record_dynamic_with(dyn_config(), engine, shards, sample_every)
}

fn record_mobility(engine: &str, shards: usize) -> String {
    let buf = SharedBuf::new();
    let recorder = Arc::new(Recorder::to_writer(Box::new(buf.clone()), 1));
    let sim = MobilitySimulator::new(mob_config()).with_observer(recorder.clone());
    match engine {
        "incremental" => sim.run().unwrap(),
        "sharded" => sim.run_sharded_n(shards).unwrap(),
        "scratch" => sim.run_scratch().unwrap(),
        other => panic!("unknown engine {other}"),
    };
    assert!(recorder.finish());
    buf.contents()
}

#[test]
fn dynamic_det_projection_is_identical_across_engines_and_shard_counts() {
    let reference = det_projection(&record_dynamic("incremental", 0, 1));
    assert!(
        reference.contains("\"stream\": \"sim.epoch\""),
        "{reference}"
    );
    assert_eq!(reference.lines().count(), dyn_config().epochs);
    // The event engine emits records for idle epochs too, so the stream
    // is line-for-line comparable with the fixed-epoch engines.
    assert_eq!(
        det_projection(&record_dynamic("event", 0, 1)),
        reference,
        "event engine det stream diverged"
    );
    assert_eq!(
        det_projection(&record_dynamic("scratch", 0, 1)),
        reference,
        "scratch engine det stream diverged"
    );
    for shards in [1usize, 2, 4] {
        assert_eq!(
            det_projection(&record_dynamic("sharded", shards, 1)),
            reference,
            "sharded engine det stream diverged at {shards} shards"
        );
    }
}

/// The acceptance witness for the protocol-backed engine: under reliable
/// immediate delivery its recorded `sim.epoch` det stream — including the
/// per-epoch `Allocation::digest()` — is byte-identical to the
/// incremental engine's, across several seeds.
#[test]
fn proto_engine_det_stream_matches_incremental_across_seeds() {
    for seed in [7u64, 21, 1234] {
        let mut config = dyn_config();
        config.seed = seed;
        let reference = det_projection(&record_dynamic_with(config.clone(), "incremental", 0, 1));
        assert!(reference.contains("\"digest\":"), "{reference}");
        assert_eq!(
            det_projection(&record_dynamic_with(config, "proto", 0, 1)),
            reference,
            "proto engine det stream diverged at seed {seed}"
        );
    }
}

#[test]
fn dynamic_records_carry_digest_and_occupancy() {
    let doc = record_dynamic("incremental", 0, 1);
    let first = doc.lines().next().unwrap();
    for key in [
        "\"arrivals\":",
        "\"admitted\":",
        "\"cloud\":",
        "\"departed\":",
        "\"in_service\":",
        "\"occupancy\":",
        "\"digest\":",
        "\"wall_ns\":",
        "\"solve_ns\":",
    ] {
        assert!(first.contains(key), "missing {key} in {first}");
    }
    // The sharded engine additionally reports per-shard batch sizes.
    let sharded = record_dynamic("sharded", 4, 1);
    assert!(
        sharded
            .lines()
            .next()
            .unwrap()
            .contains("\"shard_load\": ["),
        "{sharded}"
    );
}

#[test]
fn decimation_keeps_every_nth_record_of_the_full_stream() {
    let full = record_dynamic("incremental", 0, 1);
    let sampled = record_dynamic("incremental", 0, 3);
    let expected: String = full
        .lines()
        .filter(|l| !l.is_empty())
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    assert_eq!(det_projection(&sampled), det_projection(&expected));
    assert_eq!(sampled.lines().count(), dyn_config().epochs.div_ceil(3));
}

#[test]
fn mobility_det_projection_is_identical_across_engines_and_shard_counts() {
    let reference = det_projection(&record_mobility("incremental", 0));
    assert!(
        reference.contains("\"stream\": \"mobility.epoch\""),
        "{reference}"
    );
    assert_eq!(reference.lines().count(), mob_config().epochs);
    assert!(reference.contains("\"handovers\":"));
    assert!(reference.contains("\"profit\":"));
    assert_eq!(
        det_projection(&record_mobility("scratch", 0)),
        reference,
        "scratch engine det stream diverged"
    );
    for shards in [1usize, 2, 4] {
        assert_eq!(
            det_projection(&record_mobility("sharded", shards)),
            reference,
            "sharded engine det stream diverged at {shards} shards"
        );
    }
}

#[test]
fn recording_never_changes_outcomes() {
    let sim = DynamicSimulator::new(dyn_config());
    let bare = sim.run().unwrap();
    let buf = SharedBuf::new();
    let recorder = Arc::new(Recorder::to_writer(Box::new(buf.clone()), 1));
    let recorded = DynamicSimulator::new(dyn_config())
        .with_observer(recorder)
        .run()
        .unwrap();
    assert_eq!(bare, recorded, "recording perturbed the dynamic outcome");

    let mob = MobilitySimulator::new(mob_config()).run().unwrap();
    let buf = SharedBuf::new();
    let recorder = Arc::new(Recorder::to_writer(Box::new(buf.clone()), 1));
    let mob_recorded = MobilitySimulator::new(mob_config())
        .with_observer(recorder)
        .run()
        .unwrap();
    assert_eq!(
        mob, mob_recorded,
        "recording perturbed the mobility outcome"
    );
}
