//! Shape assertions for every figure of the paper's evaluation — the
//! claims EXPERIMENTS.md records, kept true by CI.
//!
//! Absolute numbers are ours (the paper's price constants are symbolic);
//! what must hold are the *shapes*: who wins, growth and saturation with
//! load, monotonicity in ρ. Tolerances absorb replication noise at the
//! `quick` experiment settings.

use dmra::prelude::*;
use dmra::sim::experiments::{self, ExperimentOptions};
use dmra_core::DmraConfig;

fn opts() -> ExperimentOptions {
    ExperimentOptions {
        replications: 2,
        base_seed: 42,
    }
}

/// Figs. 2–3 (ι = 2): DMRA earns strictly more than DCSP and NonCo at
/// every UE count, under both placement styles.
#[test]
fn fig2_fig3_dmra_wins_at_iota_2() {
    for table in [
        experiments::fig2(&opts()).unwrap(),
        experiments::fig3(&opts()).unwrap(),
    ] {
        let dmra = table.series("DMRA").unwrap();
        let dcsp = table.series("DCSP").unwrap();
        let nonco = table.series("NonCo").unwrap();
        for i in 0..dmra.len() {
            assert!(
                dmra[i].1 > dcsp[i].1 && dmra[i].1 > nonco[i].1,
                "{}: DMRA must lead at x = {} (dmra {}, dcsp {}, nonco {})",
                table.title,
                dmra[i].0,
                dmra[i].1,
                dcsp[i].1,
                nonco[i].1
            );
        }
        // And the lead is substantial at ι = 2 (same-SP steering pays).
        let last = dmra.len() - 1;
        assert!(
            dmra[last].1 > 1.1 * dcsp[last].1,
            "{}: expected ≥10% lead at saturation",
            table.title
        );
    }
}

/// Figs. 4–5 (ι = 1.1): the three schemes are within a few percent; DMRA
/// leads below saturation and never beats the best scheme by less than
/// −5% anywhere (the late DCSP crossover is a documented deviation,
/// see EXPERIMENTS.md).
#[test]
fn fig4_fig5_schemes_are_close_at_iota_1_1() {
    for table in [
        experiments::fig4(&opts()).unwrap(),
        experiments::fig5(&opts()).unwrap(),
    ] {
        let dmra = table.series("DMRA").unwrap();
        let dcsp = table.series("DCSP").unwrap();
        let nonco = table.series("NonCo").unwrap();
        for i in 0..dmra.len() {
            let best = dcsp[i].1.max(nonco[i].1);
            assert!(
                dmra[i].1 > 0.95 * best,
                "{}: DMRA more than 5% behind at x = {}",
                table.title,
                dmra[i].0
            );
        }
        // Below saturation (the first half of the sweep) DMRA leads.
        for i in 0..3 {
            assert!(
                dmra[i].1 >= dcsp[i].1.max(nonco[i].1) * 0.999,
                "{}: DMRA should lead below saturation at x = {}",
                table.title,
                dmra[i].0
            );
        }
    }
}

/// Figs. 2–5: profit grows with the number of UEs within the sweep, and
/// saturates once the edge capacity (~850–900 served UEs across 25 BSs)
/// is exhausted — the knee the paper describes as the growth rate
/// "becoming smaller".
#[test]
fn profit_grows_then_saturates_with_load() {
    let table = experiments::fig2(&opts()).unwrap();
    let dmra = table.series("DMRA").unwrap();
    for w in dmra.windows(2) {
        assert!(
            w[1].1 > w[0].1,
            "profit must increase with #UEs ({} -> {})",
            w[0].0,
            w[1].0
        );
    }
    // Past the capacity knee the marginal profit collapses: measure the
    // growth per extra UE on 400→700 vs 1200→1500 directly.
    let profit_at = |n_ues: usize| -> f64 {
        (0..2u64)
            .map(|rep| {
                let instance = ScenarioConfig::paper_defaults()
                    .with_ues(n_ues)
                    .with_seed(100 + rep)
                    .build()
                    .unwrap();
                instance
                    .total_profit(&Dmra::default().allocate(&instance))
                    .get()
            })
            .sum::<f64>()
            / 2.0
    };
    let early_gain = profit_at(700) - profit_at(400);
    let late_gain = profit_at(1500) - profit_at(1200);
    assert!(
        late_gain < 0.5 * early_gain,
        "expected saturation: early gain {early_gain}, late gain {late_gain}"
    );
}

/// Fig. 6: switching the ρ term on (ρ > 0) earns more profit than pure
/// price preference (ρ = 0) at 1000 UEs.
#[test]
fn fig6_rho_on_beats_rho_zero() {
    let table = experiments::fig6(&opts()).unwrap();
    let dmra = table.series("DMRA").unwrap();
    let at_zero = dmra[0].1;
    let best_positive = dmra[1..]
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_positive > at_zero,
        "some ρ > 0 must beat ρ = 0 ({best_positive} vs {at_zero})"
    );
}

/// Fig. 7: the ρ term reduces the traffic forwarded to the cloud; ρ = 0
/// forwards the most.
#[test]
fn fig7_rho_reduces_forwarded_load() {
    let table = experiments::fig7(&opts()).unwrap();
    let dmra = table.series("DMRA").unwrap();
    let at_zero = dmra[0].1;
    for &(rho, v) in &dmra[1..] {
        assert!(
            v < at_zero,
            "forwarded load at rho={rho} ({v}) should be below rho=0 ({at_zero})"
        );
    }
}

/// Ablation: the same-SP preference (line 13) is profitable at ι = 2.
#[test]
fn same_sp_preference_pays_at_iota_2() {
    let table = experiments::ablation_same_sp_preference(&opts()).unwrap();
    let with_pref = table.series("DMRA").unwrap();
    let without = table.series("DMRA (no same-SP preference)").unwrap();
    let total_with: f64 = with_pref.iter().map(|&(_, v)| v).sum();
    let total_without: f64 = without.iter().map(|&(_, v)| v).sum();
    assert!(
        total_with > total_without,
        "same-SP preference should raise profit at iota=2: {total_with} vs {total_without}"
    );
}

/// The direct algorithm-level claim behind Figs. 2–5, on paired instances.
#[test]
fn dmra_beats_baselines_on_paired_instances_at_iota_2() {
    for seed in [0u64, 1, 2] {
        let instance = ScenarioConfig::paper_defaults()
            .with_ues(600)
            .with_seed(seed)
            .build()
            .unwrap();
        let dmra = instance.total_profit(&Dmra::default().allocate(&instance));
        let dcsp = instance.total_profit(&Dcsp::default().allocate(&instance));
        let nonco = instance.total_profit(&NonCo::default().allocate(&instance));
        assert!(dmra > dcsp, "seed {seed}: {dmra} vs DCSP {dcsp}");
        assert!(dmra > nonco, "seed {seed}: {dmra} vs NonCo {nonco}");
    }
}

/// The matcher's convergence diagnostics stay within the theoretical
/// bounds at every paper scale.
#[test]
fn dmra_converges_quickly_at_every_scale() {
    for n_ues in [400usize, 900] {
        let instance = ScenarioConfig::paper_defaults()
            .with_ues(n_ues)
            .with_seed(3)
            .build()
            .unwrap();
        let out = Dmra::new(DmraConfig::paper_defaults())
            .solve(&instance)
            .unwrap();
        assert!(
            out.iterations <= n_ues + 1,
            "iterations {} exceed |U|+1",
            out.iterations
        );
        // Practical convergence is far faster than the bound.
        assert!(
            out.iterations < 100,
            "iterations {} suspiciously high",
            out.iterations
        );
    }
}
