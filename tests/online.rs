//! Workspace-level tests of the online/mobility regimes against the
//! static matcher and the Erlang-B analytics.

use dmra::prelude::*;
use dmra::sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
use dmra::sim::erlang::{erlang_b, TrunkModel};
use dmra::sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};

#[test]
fn online_dmra_beats_online_nonco_on_identical_traces() {
    for rate in [80.0, 160.0] {
        let config = DynamicConfig {
            scenario: ScenarioConfig::paper_defaults(),
            arrival_rate: rate,
            mean_holding: 5.0,
            holding: HoldingDistribution::Geometric,
            epochs: 50,
            seed: 41,
        };
        let dmra = DynamicSimulator::new(config.clone()).run().unwrap();
        let nonco = DynamicSimulator::with_allocator(config, Box::new(NonCo::default()))
            .run()
            .unwrap();
        assert_eq!(dmra.arrivals, nonco.arrivals, "traces must match");
        assert!(
            dmra.total_profit > nonco.total_profit,
            "rate {rate}: dmra {} vs nonco {}",
            dmra.total_profit,
            nonco.total_profit
        );
    }
}

#[test]
fn erlang_dimensioning_is_sane_for_the_paper_deployment() {
    let model = TrunkModel::estimate(&ScenarioConfig::paper_defaults(), 300, 1).unwrap();
    // At an offered load equal to half the effective servers, blocking is
    // negligible; at twice, it is massive.
    let half = model.predicted_blocking(f64::from(model.servers) / 10.0, 5.0);
    let double = model.predicted_blocking(f64::from(model.servers) * 2.0 / 5.0, 5.0);
    assert!(half < 0.01, "half-load blocking {half}");
    assert!(double > 0.4, "double-load blocking {double}");
    // And the raw formula is monotone in between.
    let a = f64::from(model.servers);
    assert!(erlang_b(model.servers, 0.8 * a) < erlang_b(model.servers, 1.2 * a));
}

#[test]
fn mobility_policies_agree_when_nothing_moves() {
    let base = MobilityConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(200),
        speed_mps: (0.0, 0.0),
        epoch_seconds: 10.0,
        epochs: 6,
        seed: 2,
        policy: MobilityPolicy::FullReallocation,
        stationary_fraction: 0.0,
    };
    let full = MobilitySimulator::new(base.clone()).run().unwrap();
    let sticky = MobilitySimulator::new(MobilityConfig {
        policy: MobilityPolicy::Sticky,
        ..base
    })
    .run()
    .unwrap();
    // With stationary UEs both policies keep the epoch-1 allocation: no
    // handovers, identical profit timelines.
    assert_eq!(full.handovers, 0);
    assert_eq!(sticky.handovers, 0);
    assert_eq!(full.profit_timeline, sticky.profit_timeline);
}

#[test]
fn mobility_served_count_is_stable_under_churn() {
    let out = MobilitySimulator::new(MobilityConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(500),
        speed_mps: (10.0, 20.0),
        epoch_seconds: 10.0,
        epochs: 15,
        seed: 3,
        policy: MobilityPolicy::FullReallocation,
        stationary_fraction: 0.0,
    })
    .run()
    .unwrap();
    // A well-provisioned network keeps serving (almost) everyone as they
    // move; the matcher never collapses coverage.
    let min = *out.served_timeline.iter().min().unwrap();
    let max = *out.served_timeline.iter().max().unwrap();
    assert!(min as f64 > 0.95 * max as f64, "served range {min}..{max}");
}

#[test]
fn dynamic_and_static_profit_rates_are_consistent() {
    // At light load the online regime admits everything, so the profit per
    // admitted task should match a static allocation's per-UE profit to
    // within distribution noise.
    let out = DynamicSimulator::new(DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: 20.0,
        mean_holding: 4.0,
        holding: HoldingDistribution::Geometric,
        epochs: 50,
        seed: 4,
    })
    .run()
    .unwrap();
    let online_per_task = out.total_profit.get() / out.admitted as f64;

    let instance = ScenarioConfig::paper_defaults()
        .with_ues(200)
        .with_seed(4)
        .build()
        .unwrap();
    let allocation = Dmra::default().allocate(&instance);
    let static_per_task =
        instance.total_profit(&allocation).get() / allocation.edge_served() as f64;

    let ratio = online_per_task / static_per_task;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "per-task profit diverged: online {online_per_task:.2} vs static {static_per_task:.2}"
    );
}
