//! End-to-end verification of the paper's equations through the public
//! API: build a hand-crafted instance and check every derived quantity
//! against values computed by hand from Eqs. (2), (3), (5)–(10), (18).

use dmra::core::{CoverageModel, ProblemInstance};
use dmra::econ::PricingConfig;
use dmra::radio::RadioConfig;
use dmra::types::*;

/// One SP, one BS at the origin, one UE at exactly 300 m requesting
/// 4 Mbit/s and 4 CRUs.
fn hand_instance(same_sp: bool) -> ProblemInstance {
    let sps = vec![
        SpSpec::new(SpId::new(0), Money::new(9.0), Money::new(1.0)),
        SpSpec::new(SpId::new(1), Money::new(9.0), Money::new(1.0)),
    ];
    let bss = vec![BsSpec::new(
        BsId::new(0),
        SpId::new(0),
        Point::new(0.0, 0.0),
        vec![Cru::new(100)],
        Hertz::from_mhz(10.0),
        RrbCount::new(55),
    )];
    let ues = vec![UeSpec::new(
        UeId::new(0),
        if same_sp { SpId::new(0) } else { SpId::new(1) },
        Point::new(300.0, 0.0),
        ServiceId::new(0),
        Cru::new(4),
        BitsPerSec::from_mbps(4.0),
        Dbm::new(10.0),
    )];
    ProblemInstance::build(
        sps,
        bss,
        ues,
        ServiceCatalog::new(1),
        PricingConfig::paper_defaults(),
        RadioConfig::paper_defaults(),
        CoverageModel::FixedRadius(Meters::new(300.0)),
    )
    .unwrap()
}

#[test]
fn eq18_eq2_eq3_hand_computation() {
    let inst = hand_instance(true);
    let link = inst.link(UeId::new(0), BsId::new(0)).unwrap();
    // Eq. (18): PL = 140.7 + 36.7·log10(0.3) = 121.512 dB.
    // rx = 10 − 121.512 = −111.512 dBm; noise = −170 dBm
    // ⇒ SINR = 58.488 dB = 10^5.8488 ≈ 7.059e5.
    assert!(
        (link.sinr_linear - 7.059e5).abs() < 0.01e5,
        "sinr = {}",
        link.sinr_linear
    );
    // Eq. (2): e = 180 kHz · log2(1 + SINR) ≈ 180e3 · 19.429 ≈ 3.497 Mbit/s.
    assert!(
        (link.per_rrb_rate.to_mbps() - 3.497).abs() < 0.005,
        "e = {}",
        link.per_rrb_rate
    );
    // Eq. (3): n = ⌈4 / 3.497⌉ = 2.
    assert_eq!(link.n_rrbs, RrbCount::new(2));
    assert!((link.distance.get() - 300.0).abs() < 1e-9);
}

#[test]
fn eq9_eq10_hand_computation() {
    // Eq. (9), same SP: p = b + d^σ·b = 2 + 300^0.01·2 = 2 + 2.11739 =
    // 4.11739 (b = 2, σ = 0.01).
    let inst = hand_instance(true);
    let link = inst.link(UeId::new(0), BsId::new(0)).unwrap();
    assert!(link.same_sp);
    assert!((link.price.get() - 4.11739).abs() < 1e-4, "{}", link.price);

    // Eq. (10), different SPs: p = ι·b + d^σ·b = 4 + 2.11739 = 6.11739.
    let inst = hand_instance(false);
    let link = inst.link(UeId::new(0), BsId::new(0)).unwrap();
    assert!(!link.same_sp);
    assert!((link.price.get() - 6.11739).abs() < 1e-4, "{}", link.price);
}

#[test]
fn eq5_to_eq8_hand_computation() {
    // Serve the UE and recompute W_k by hand:
    // W_k^r = c·m_k = 4·9 = 36; W_k^S = c·m_k^o = 4·1 = 4;
    // W_k^B = c·p = 4·4.11739 = 16.46957; W_k = 36 − 16.46957 − 4 =
    // 15.53043.
    let inst = hand_instance(true);
    let mut alloc = dmra::core::Allocation::all_cloud(1);
    alloc.assign(UeId::new(0), BsId::new(0));
    alloc.validate(&inst).unwrap();
    let report = inst.profit_report(&alloc);
    let w0 = report.per_sp[0];
    assert!((w0.revenue.get() - 36.0).abs() < 1e-9);
    assert!((w0.other_cost.get() - 4.0).abs() < 1e-9);
    assert!((w0.bs_payment.get() - 16.46957).abs() < 1e-3);
    assert!((report.total_profit().get() - 15.53043).abs() < 1e-3);
    // The subscriber belongs to sp0; sp1 earns nothing.
    assert_eq!(report.per_sp[1].profit().get(), 0.0);
}

#[test]
fn constraint_16_margin_check_matches_hand_computation() {
    // m_k − m_k^o = 8 must exceed the worst reachable price. At the
    // 300 m coverage limit the cross-SP price is 6.117 < 8 ⇒ builds.
    let inst = hand_instance(false);
    assert_eq!(inst.n_ues(), 1);
    // Shrink the margin to 6 < 6.117 ⇒ must be rejected.
    let sps = vec![
        SpSpec::new(SpId::new(0), Money::new(7.0), Money::new(1.0)),
        SpSpec::new(SpId::new(1), Money::new(7.0), Money::new(1.0)),
    ];
    let err = ProblemInstance::build(
        sps,
        inst.bss().to_vec(),
        inst.ues().to_vec(),
        inst.catalog(),
        *inst.pricing(),
        *inst.radio(),
        inst.coverage(),
    )
    .unwrap_err();
    assert!(
        matches!(err, Error::UnprofitablePricing { .. }),
        "expected constraint-(16) rejection, got {err}"
    );
}

#[test]
fn max_rrbs_matches_paper_bandwidth_division() {
    // 10 MHz / 180 kHz = 55.55… ⇒ N_i = 55.
    let inst = hand_instance(true);
    assert_eq!(inst.bss()[0].rrb_budget, RrbCount::new(55));
}

#[test]
fn f_u_counts_candidate_bss() {
    let inst = hand_instance(true);
    assert_eq!(inst.f_u(UeId::new(0)), 1);
    assert_eq!(inst.covered_ues(BsId::new(0)), &[UeId::new(0)]);
}
