//! Optimality-gap measurements against the exact branch-and-bound solver.
//!
//! The exact solver is exponential, so these tests run on reduced copies
//! of the paper scenario (2 SPs × 4 BSs); the qualitative question —
//! how much profit does decentralization cost? — transfers.

use dmra::baselines::ExactOptimal;
use dmra::prelude::*;
use dmra::sim::BsPlacement;
use dmra_core::DmraConfig;

fn small_scenario(n_ues: usize, seed: u64) -> dmra::core::ProblemInstance {
    let mut cfg = ScenarioConfig::paper_defaults()
        .with_ues(n_ues)
        .with_seed(seed);
    cfg.n_sps = 2;
    cfg.bss_per_sp = 2;
    cfg.n_services = 2;
    cfg.bs_placement = BsPlacement::RegularGrid {
        rows: 2,
        cols: 2,
        isd: Meters::new(300.0),
    };
    cfg.build().unwrap()
}

#[test]
fn exact_solver_dominates_everything() {
    for seed in 0..6u64 {
        let instance = small_scenario(12, seed);
        let (opt_alloc, opt_profit) = ExactOptimal::default().solve(&instance).unwrap();
        opt_alloc.validate(&instance).unwrap();
        let algos: Vec<Box<dyn Allocator>> = vec![
            Box::new(Dmra::default()),
            Box::new(Dcsp::default()),
            Box::new(NonCo::default()),
            Box::new(GreedyProfit::default()),
            Box::new(RandomAllocator::new(seed)),
        ];
        for algo in algos {
            let profit = instance.total_profit(&algo.allocate(&instance));
            assert!(
                opt_profit.get() >= profit.get() - 1e-9,
                "seed {seed}: {} ({profit}) beat the optimum ({opt_profit})",
                algo.name()
            );
        }
    }
}

#[test]
fn dmra_average_gap_is_small() {
    let mut dmra_total = 0.0;
    let mut opt_total = 0.0;
    for seed in 10..22u64 {
        let instance = small_scenario(14, seed);
        let (_, opt) = ExactOptimal::default().solve(&instance).unwrap();
        opt_total += opt.get();
        dmra_total += instance
            .total_profit(&Dmra::default().allocate(&instance))
            .get();
    }
    let ratio = dmra_total / opt_total;
    assert!(
        ratio > 0.80,
        "DMRA at {:.1}% of the exact optimum on average",
        ratio * 100.0
    );
}

#[test]
fn greedy_is_closer_to_optimal_than_random() {
    let mut greedy_total = 0.0;
    let mut random_total = 0.0;
    let mut opt_total = 0.0;
    for seed in 30..40u64 {
        let instance = small_scenario(14, seed);
        let (_, opt) = ExactOptimal::default().solve(&instance).unwrap();
        opt_total += opt.get();
        greedy_total += instance
            .total_profit(&GreedyProfit::default().allocate(&instance))
            .get();
        random_total += instance
            .total_profit(&RandomAllocator::new(seed).allocate(&instance))
            .get();
    }
    assert!(greedy_total > random_total);
    assert!(greedy_total / opt_total > 0.9);
}

#[test]
fn same_sp_preference_narrows_the_gap_at_high_iota() {
    // The multi-SP term is DMRA's profit lever: disabling it must not
    // bring DMRA closer to the optimum at ι = 2.
    let mut with_pref = 0.0;
    let mut without = 0.0;
    for seed in 50..60u64 {
        let instance = small_scenario(16, seed);
        with_pref += instance
            .total_profit(&Dmra::default().allocate(&instance))
            .get();
        let no_pref = Dmra::new(DmraConfig {
            same_sp_preference: false,
            ..DmraConfig::paper_defaults()
        });
        without += instance.total_profit(&no_pref.allocate(&instance)).get();
    }
    assert!(
        with_pref >= without * 0.999,
        "same-SP preference lost profit: {with_pref} vs {without}"
    );
}
