//! The incremental online engine is bit-identical to rebuild-from-scratch.
//!
//! The dynamic simulator has two engines: the epoch-persistent
//! incremental engine (`run`) and the original full-residual-rebuild loop
//! (`run_scratch`), kept as the executable specification. These tests pin
//! their equality — identical `DynamicOutcome`s, byte for byte — across
//! allocators, seeds, arrival rates and scratch-side thread counts, and
//! separately pin the spatial candidate pruning bit-identical to the
//! exhaustive O(U×B) scan at paper scale.

use dmra_core::{Allocator, CandidateScan, CoverageModel, Dmra, ProblemInstance, Threads};
use dmra_radio::InterferenceModel;
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
use dmra_sim::ScenarioConfig;
use dmra_types::{BitsPerSec, BsId, UeId};

fn config(rate: f64, seed: u64, epochs: usize) -> DynamicConfig {
    DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: rate,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs,
        seed,
    }
}

#[test]
fn incremental_engine_matches_scratch_for_every_allocator() {
    type Factory = fn() -> Box<dyn Allocator>;
    let factories: Vec<(&str, Factory)> = vec![
        ("DMRA", || Box::new(Dmra::default())),
        ("NonCo", || Box::new(dmra_baselines::NonCo::default())),
        ("GreedyProfit", || {
            Box::new(dmra_baselines::GreedyProfit::default())
        }),
    ];
    for (name, factory) in factories {
        for &(rate, seed) in &[(25.0, 3u64), (140.0, 8)] {
            let sim = DynamicSimulator::with_allocator(config(rate, seed, 30), factory());
            let incremental = sim.run().unwrap();
            let scratch = sim.run_scratch().unwrap();
            assert_eq!(
                incremental, scratch,
                "{name} diverged at rate {rate}, seed {seed}"
            );
        }
    }
}

#[test]
fn incremental_engine_matches_scratch_for_every_thread_count() {
    let sim = DynamicSimulator::new(config(120.0, 5, 25));
    let incremental = sim.run().unwrap();
    for threads in [1usize, 2, 4] {
        let scratch = sim
            .run_scratch_with_threads(Threads::Fixed(threads))
            .unwrap();
        assert_eq!(incremental, scratch, "diverged at {threads} threads");
    }
}

#[test]
fn incremental_engine_matches_scratch_at_saturating_load() {
    // Past saturation most arrivals bounce; the residual instances then
    // exercise drained-budget candidate pruning heavily.
    let sim = DynamicSimulator::new(config(400.0, 13, 15));
    assert_eq!(sim.run().unwrap(), sim.run_scratch().unwrap());
}

/// Rebuilds an instance's inputs with a forced scan mode.
fn rebuild(inst: &ProblemInstance, scan: CandidateScan) -> ProblemInstance {
    ProblemInstance::build_with_scan(
        inst.sps().to_vec(),
        inst.bss().to_vec(),
        inst.ues().to_vec(),
        inst.catalog(),
        *inst.pricing(),
        *inst.radio(),
        inst.coverage(),
        Threads::Auto,
        scan,
    )
    .unwrap()
}

fn assert_identical_candidates(a: &ProblemInstance, b: &ProblemInstance) {
    for u in 0..a.n_ues() {
        let ue = UeId::new(u as u32);
        assert_eq!(a.candidates(ue), b.candidates(ue), "UE {u} rows differ");
        assert_eq!(a.f_u(ue), b.f_u(ue), "f_u({u}) differs");
    }
    for b_idx in 0..a.n_bss() {
        let bs = BsId::new(b_idx as u32);
        assert_eq!(
            a.covered_ues(bs),
            b.covered_ues(bs),
            "covered({b_idx}) differs"
        );
    }
}

#[test]
fn pruned_candidate_generation_is_bit_identical_at_paper_scale() {
    // 900 UEs × 25 BSs, fixed 300 m coverage radius: the pruned build
    // must reproduce the exhaustive scan byte for byte — and the matcher
    // must therefore agree too.
    let auto = ScenarioConfig::paper_defaults()
        .with_ues(900)
        .with_seed(5)
        .build()
        .unwrap();
    let exhaustive = rebuild(&auto, CandidateScan::Exhaustive);
    assert_identical_candidates(&auto, &exhaustive);
    let dmra = Dmra::default();
    assert_eq!(dmra.solve(&auto).unwrap(), dmra.solve(&exhaustive).unwrap());
}

#[test]
fn pruned_candidate_generation_survives_interference_model() {
    // Load-proportional interference takes the own-rx branch of the scan
    // kernel; pruning must stay bit-identical there as well.
    let mut scenario = ScenarioConfig::paper_defaults().with_ues(400).with_seed(9);
    scenario.radio.interference = InterferenceModel::LoadProportional { factor: 0.1 };
    let auto = scenario.build().unwrap();
    let exhaustive = rebuild(&auto, CandidateScan::Exhaustive);
    assert_identical_candidates(&auto, &exhaustive);
}

#[test]
fn min_rate_coverage_falls_back_to_exhaustive_scan() {
    // No fixed radius → no spatial index; Auto and Exhaustive are the
    // same code path and must (trivially) agree.
    let base = ScenarioConfig::paper_defaults()
        .with_ues(200)
        .with_seed(11)
        .build()
        .unwrap();
    let min_rate = CoverageModel::MinPerRrbRate(BitsPerSec::from_mbps(0.5));
    let auto = ProblemInstance::build(
        base.sps().to_vec(),
        base.bss().to_vec(),
        base.ues().to_vec(),
        base.catalog(),
        *base.pricing(),
        *base.radio(),
        min_rate,
    )
    .unwrap();
    let exhaustive = ProblemInstance::build_with_scan(
        base.sps().to_vec(),
        base.bss().to_vec(),
        base.ues().to_vec(),
        base.catalog(),
        *base.pricing(),
        *base.radio(),
        min_rate,
        Threads::Auto,
        CandidateScan::Exhaustive,
    )
    .unwrap();
    assert_identical_candidates(&auto, &exhaustive);
}
