//! The region-sharded engines are bit-identical to their unsharded
//! counterparts.
//!
//! `DynamicSimulator::run_sharded` / `MobilitySimulator::run_sharded`
//! route UEs to rectangular spatial shards, build candidate rows on
//! long-lived worker threads against site-filtered contexts, and solve
//! the merged instance globally (DESIGN.md §13). The mirroring invariant
//! — every BS within the coverage halo of a shard's rectangle is kept in
//! that shard's prune index — makes the merged rows byte-identical to
//! the unsharded build, so outcomes must match exactly. These tests pin
//! that across shard counts {1, 2, 4, 9}, allocators, seeds, explicit
//! grids, saturating loads (boundary-straddling UEs at 3×3 shards on the
//! paper's 1200 m region), mobility policies with seam-crossing movers,
//! and telemetry on/off.

use dmra_core::{Allocator, Dmra};
use dmra_sim::dynamic::{DynamicConfig, DynamicSimulator, HoldingDistribution};
use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
use dmra_sim::ScenarioConfig;

fn dyn_config(rate: f64, seed: u64, epochs: usize) -> DynamicConfig {
    DynamicConfig {
        scenario: ScenarioConfig::paper_defaults(),
        arrival_rate: rate,
        mean_holding: 5.0,
        holding: HoldingDistribution::Geometric,
        epochs,
        seed,
    }
}

fn mob_config(seed: u64, policy: MobilityPolicy, stationary: f64) -> MobilityConfig {
    MobilityConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(250),
        speed_mps: (5.0, 15.0),
        epoch_seconds: 10.0,
        epochs: 8,
        seed,
        policy,
        stationary_fraction: stationary,
    }
}

#[test]
fn sharded_dynamic_matches_unsharded_for_every_allocator_and_shard_count() {
    type Factory = fn() -> Box<dyn Allocator>;
    let factories: Vec<(&str, Factory)> = vec![
        ("DMRA", || Box::new(Dmra::default())),
        ("NonCo", || Box::new(dmra_baselines::NonCo::default())),
        ("GreedyProfit", || {
            Box::new(dmra_baselines::GreedyProfit::default())
        }),
    ];
    for (name, factory) in factories {
        for &(rate, seed) in &[(30.0, 3u64), (120.0, 8)] {
            let sim = DynamicSimulator::with_allocator(dyn_config(rate, seed, 20), factory());
            let unsharded = sim.run().unwrap();
            for shards in [1usize, 2, 4, 9] {
                assert_eq!(
                    sim.run_sharded_n(shards).unwrap(),
                    unsharded,
                    "{name} diverged at {shards} shards, rate {rate}, seed {seed}"
                );
            }
        }
    }
}

#[test]
fn sharded_dynamic_matches_the_scratch_specification_on_explicit_grids() {
    // Not just the incremental engine: the sharded outcome equals the
    // exhaustive-scan executable specification too, for asymmetric and
    // square grids alike.
    let sim = DynamicSimulator::new(dyn_config(80.0, 5, 18));
    let scratch = sim.run_scratch().unwrap();
    for (rows, cols) in [(1, 1), (1, 2), (2, 2), (3, 3), (1, 9)] {
        assert_eq!(
            sim.run_sharded(rows, cols).unwrap(),
            scratch,
            "{rows}×{cols} grid diverged from the scratch engine"
        );
    }
}

#[test]
fn boundary_straddling_ues_at_saturating_load_stay_bit_identical() {
    // 3×3 shards over the paper's 1200 m region give 400 m cells against
    // a 300 m coverage radius: most arrivals' coverage discs cross a
    // seam, and saturating load makes any candidate-set difference
    // visible as an admission flip. Drained budgets also exercise the
    // per-BS stamp path hard.
    let sim = DynamicSimulator::new(dyn_config(400.0, 13, 12));
    let unsharded = sim.run().unwrap();
    assert_eq!(sim.run_sharded(3, 3).unwrap(), unsharded);
}

#[test]
fn sharded_dynamic_matches_for_every_holding_distribution() {
    for dist in [
        HoldingDistribution::Geometric,
        HoldingDistribution::Deterministic,
        HoldingDistribution::Exponential,
    ] {
        let mut cfg = dyn_config(40.0, 17, 15);
        cfg.holding = dist;
        let sim = DynamicSimulator::new(cfg);
        assert_eq!(
            sim.run_sharded_n(4).unwrap(),
            sim.run().unwrap(),
            "{dist} holding diverged under sharding"
        );
    }
}

#[test]
fn sharded_mobility_matches_for_every_policy_seed_and_stationary_fraction() {
    for policy in [MobilityPolicy::FullReallocation, MobilityPolicy::Sticky] {
        for &(seed, stationary) in &[(3u64, 0.0), (8, 0.5), (21, 0.9)] {
            let sim = MobilitySimulator::new(mob_config(seed, policy, stationary));
            let unsharded = sim.run().unwrap();
            for shards in [1usize, 2, 4, 9] {
                assert_eq!(
                    sim.run_sharded_n(shards).unwrap(),
                    unsharded,
                    "{policy:?} diverged at {shards} shards, seed {seed}, \
                     stationary {stationary}"
                );
            }
        }
    }
}

#[test]
fn seam_crossing_movers_hand_over_between_shards_without_diverging() {
    // Fast movers cross the 2×2 shard seams repeatedly (600 m cells,
    // up to 400 m per epoch), forcing shard handover epochs: a UE's row
    // is built by a different worker than last epoch. The sticky policy
    // keeps its serving BS through the residual path regardless.
    let mut cfg = mob_config(11, MobilityPolicy::Sticky, 0.0);
    cfg.speed_mps = (25.0, 40.0);
    cfg.epochs = 10;
    let sim = MobilitySimulator::new(cfg);
    let unsharded = sim.run().unwrap();
    let sharded = sim.run_sharded(2, 2).unwrap();
    assert_eq!(sharded, unsharded);
    // Movers this fast must actually hand over BSs sometimes — the test
    // would be vacuous on a population that never moves between cells.
    assert!(sharded.handovers > 0, "no handovers at 25–40 m/s");
}

#[test]
fn sharded_runs_are_unaffected_by_the_component_solve_path() {
    // The shard workers build rows; the solve happens on the merged
    // instance, so flipping the allocator to per-component execution
    // (tests/decomposition.rs) must compose with sharding bit-identically.
    use dmra_core::SolveMode;
    let cfg = dyn_config(80.0, 5, 18);
    let mono = DynamicSimulator::new(cfg.clone()).run_sharded_n(4).unwrap();
    let comp = DynamicSimulator::with_allocator(
        cfg,
        Box::new(Dmra::default().with_solve_mode(SolveMode::Components)),
    );
    assert_eq!(comp.run_sharded_n(4).unwrap(), mono);
    assert_eq!(comp.run_sharded(3, 3).unwrap(), mono);

    let mcfg = mob_config(8, MobilityPolicy::Sticky, 0.25);
    let m_mono = MobilitySimulator::new(mcfg.clone())
        .run_sharded(2, 2)
        .unwrap();
    let m_comp = MobilitySimulator::new(mcfg).with_allocator(Box::new(
        Dmra::default().with_solve_mode(SolveMode::Components),
    ));
    assert_eq!(m_comp.run_sharded(2, 2).unwrap(), m_mono);
}

#[test]
fn sharded_equality_is_unaffected_by_telemetry() {
    let sim = DynamicSimulator::new(dyn_config(60.0, 7, 15));
    let baseline = sim.run().unwrap();

    dmra_obs::set_enabled(true);
    let dyn_on = sim.run_sharded_n(4).unwrap();
    // The per-shard registries merged `online.shard_epoch_ns` into the
    // global registry at run end.
    let shard_ns = dmra_obs::global().histogram("online.shard_epoch_ns");
    assert!(shard_ns.count() > 0, "no shard epoch spans were recorded");

    let mob = MobilitySimulator::new(mob_config(3, MobilityPolicy::FullReallocation, 0.0));
    let handovers = dmra_obs::global().counter("sim.shard_handovers");
    let before = handovers.get();
    let mob_on = mob.run_sharded(2, 2).unwrap();
    assert!(
        handovers.get() > before,
        "moving UEs never changed shard owners"
    );
    dmra_obs::set_enabled(false);

    assert_eq!(dyn_on, baseline, "telemetry changed the sharded outcome");
    assert_eq!(dyn_on, sim.run_sharded_n(4).unwrap());
    assert_eq!(mob_on, mob.run().unwrap());
    assert_eq!(mob_on, mob.run_sharded(2, 2).unwrap());
}
