//! The incremental mobility engine is bit-identical to rebuild-from-scratch.
//!
//! `MobilitySimulator::run` drives the epoch-persistent
//! [`dmra_core::DeploymentContext`] with the cross-epoch candidate-row
//! cache and the batched link kernel; `run_scratch` rebuilds a full
//! exhaustive-scan [`dmra_core::ProblemInstance`] every epoch with the
//! scalar evaluator. These tests pin their equality — identical
//! `MobilityOutcome`s, byte for byte — across reallocation policies,
//! allocators, seeds, stationary fractions and scratch-side thread
//! counts, including a >1024-UE population that exercises the parallel
//! per-epoch row rebuild.

use dmra_core::{Allocator, Dmra, Threads};
use dmra_sim::mobility::{MobilityConfig, MobilityPolicy, MobilitySimulator};
use dmra_sim::ScenarioConfig;

fn config(seed: u64, policy: MobilityPolicy, stationary: f64) -> MobilityConfig {
    MobilityConfig {
        scenario: ScenarioConfig::paper_defaults().with_ues(250),
        speed_mps: (5.0, 15.0),
        epoch_seconds: 10.0,
        epochs: 8,
        seed,
        policy,
        stationary_fraction: stationary,
    }
}

#[test]
fn incremental_engine_matches_scratch_for_every_policy_and_seed() {
    for policy in [MobilityPolicy::FullReallocation, MobilityPolicy::Sticky] {
        for &(seed, stationary) in &[(3u64, 0.0), (8, 0.5), (21, 0.9)] {
            let sim = MobilitySimulator::new(config(seed, policy, stationary));
            let incremental = sim.run().unwrap();
            let scratch = sim.run_scratch().unwrap();
            assert_eq!(
                incremental, scratch,
                "{policy:?} diverged at seed {seed}, stationary {stationary}"
            );
        }
    }
}

#[test]
fn incremental_engine_matches_scratch_for_every_allocator() {
    type Factory = fn() -> Box<dyn Allocator>;
    let factories: Vec<(&str, Factory)> = vec![
        ("DMRA", || Box::new(Dmra::default())),
        ("NonCo", || Box::new(dmra_baselines::NonCo::default())),
        ("GreedyProfit", || {
            Box::new(dmra_baselines::GreedyProfit::default())
        }),
    ];
    for (name, factory) in factories {
        for policy in [MobilityPolicy::FullReallocation, MobilityPolicy::Sticky] {
            let sim = MobilitySimulator::new(config(5, policy, 0.4)).with_allocator(factory());
            let incremental = sim.run().unwrap();
            let scratch = sim.run_scratch().unwrap();
            assert_eq!(incremental, scratch, "{name} diverged under {policy:?}");
        }
    }
}

#[test]
fn incremental_engine_matches_scratch_for_every_thread_count() {
    let sim = MobilitySimulator::new(config(7, MobilityPolicy::Sticky, 0.6));
    let incremental = sim.run().unwrap();
    for threads in [1usize, 2, 4] {
        let scratch = sim
            .run_scratch_with_threads(Threads::Fixed(threads))
            .unwrap();
        assert_eq!(incremental, scratch, "diverged at {threads} threads");
    }
}

#[test]
fn incremental_engine_matches_scratch_above_the_parallel_rebuild_threshold() {
    // ≥1024 UEs crosses PAR_ROWS_MIN inside the deployment context, so
    // the incremental side fans the per-epoch row rebuild out over
    // workers (cache lookups included) while the scratch side stays the
    // serial exhaustive loop. Outcomes must still match byte for byte.
    let mut cfg = config(12, MobilityPolicy::FullReallocation, 0.7);
    cfg.scenario = cfg.scenario.with_ues(1400);
    cfg.epochs = 4;
    let sim = MobilitySimulator::new(cfg);
    assert_eq!(sim.run().unwrap(), sim.run_scratch().unwrap());
}
