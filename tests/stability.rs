//! Matching-stability guarantees of DMRA at paper scale.
//!
//! See `dmra_core::analysis` for the definitions. The headline result:
//! with `ρ = 0` (pure price preference, which is static) DMRA's
//! prune-on-incapacity loop yields a **price-envy-free** matching — no UE
//! can point at a strictly cheaper candidate BS that still has room for
//! it. With `ρ > 0` preferences drift as resources drain, and a small
//! number of envy pairs can appear.

use dmra::core::analysis::{envy_pairs_by, eq17_envy_pairs, price_envy_pairs};
use dmra::prelude::*;
use dmra::proto::DropPolicy;
use dmra_core::agents::run_decentralized;
use dmra_core::DmraConfig;

#[test]
fn rho_zero_dmra_is_price_envy_free_at_paper_scale() {
    for (n_ues, seed) in [(300usize, 1u64), (600, 2), (900, 3)] {
        let instance = ScenarioConfig::paper_defaults()
            .with_ues(n_ues)
            .with_seed(seed)
            .build()
            .unwrap();
        let dmra = Dmra::new(DmraConfig::paper_defaults().with_rho(0.0));
        let allocation = dmra.allocate(&instance);
        let pairs = price_envy_pairs(&instance, &allocation);
        assert!(
            pairs.is_empty(),
            "n_ues={n_ues} seed={seed}: {} price-envy pairs, first: {:?}",
            pairs.len(),
            pairs.first()
        );
    }
}

#[test]
fn rho_zero_envy_freeness_also_holds_under_random_placement_and_iota() {
    for iota in [1.1, 2.0] {
        let instance = ScenarioConfig::paper_defaults()
            .with_ues(500)
            .with_iota(iota)
            .with_random_placement()
            .with_seed(9)
            .build()
            .unwrap();
        let dmra = Dmra::new(DmraConfig::paper_defaults().with_rho(0.0));
        let allocation = dmra.allocate(&instance);
        assert!(price_envy_pairs(&instance, &allocation).is_empty());
    }
}

#[test]
fn decentralized_rho_zero_inherits_envy_freeness() {
    // The agent execution is bit-identical to the matcher under reliable
    // delivery, so the stability property carries over; assert it
    // directly on the protocol output.
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(400)
        .with_seed(4)
        .build()
        .unwrap();
    let config = DmraConfig::paper_defaults().with_rho(0.0);
    let out = run_decentralized(&instance, &config, DropPolicy::reliable(), 100_000).unwrap();
    assert!(price_envy_pairs(&instance, &out.allocation).is_empty());
}

#[test]
fn positive_rho_envy_is_bounded() {
    // With ρ > 0 the preference drifts; envy can appear but should stay a
    // small fraction of the population — DMRA still converges to a
    // near-stable matching.
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(800)
        .with_seed(5)
        .build()
        .unwrap();
    let allocation = Dmra::default().allocate(&instance); // ρ = 100
    let envious: std::collections::HashSet<_> = eq17_envy_pairs(&instance, &allocation, 100.0)
        .into_iter()
        .map(|p| p.ue)
        .collect();
    let frac = envious.len() as f64 / instance.n_ues() as f64;
    // The exact fraction is seed-sensitive (25.0% on the vendored RNG
    // stream, a touch lower on upstream StdRng); the property being
    // guarded is only that envy stays a bounded minority of the
    // population, so the threshold leaves headroom over both streams.
    assert!(
        frac < 0.35,
        "{:.1}% of UEs envious at rho=100 — matching far from stable",
        frac * 100.0
    );
}

#[test]
fn baselines_are_not_price_envy_free() {
    // The property is specific to price-preference deferred acceptance:
    // NonCo (max-SINR) routinely leaves UEs on pricier BSs while cheaper
    // candidates have room. This guards against the stability test being
    // vacuously true.
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(600)
        .with_seed(6)
        .build()
        .unwrap();
    let allocation = NonCo::default().allocate(&instance);
    let pairs = price_envy_pairs(&instance, &allocation);
    assert!(
        !pairs.is_empty(),
        "NonCo unexpectedly produced a price-envy-free matching"
    );
}

#[test]
fn custom_preference_scores_are_respected() {
    let instance = ScenarioConfig::paper_defaults()
        .with_ues(200)
        .with_seed(7)
        .build()
        .unwrap();
    let allocation = Dmra::default().allocate(&instance);
    // Under a constant score nothing is strictly preferred, so there can
    // be no envy whatsoever.
    let pairs = envy_pairs_by(&instance, &allocation, |_, _| 1.0);
    assert!(pairs.is_empty());
}
